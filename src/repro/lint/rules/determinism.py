"""Determinism rules (DET001-DET004).

The simulator runs in *virtual* time: every run on the same inputs must
produce byte-identical traces and cost reports.  Wall-clock reads,
unseeded randomness, and iteration over unordered containers in code
that feeds trace exports all break that, so they are banned in the
``machine``, ``core``, and ``obs`` layers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Rule, SourceFile, Violation, dotted_name

__all__ = [
    "WallClockRule",
    "RandomnessRule",
    "SetIterationRule",
    "DictViewIterationRule",
]

_DETERMINISTIC_SCOPES = ("machine/", "core/", "obs/")

#: Calls that read (or wait on) the host's wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Entropy sources with no seedable handle at all.
_ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

#: Consumers for which the iteration order of their argument is
#: irrelevant (fold is commutative or the consumer re-orders).
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "set", "frozenset"}
)


class WallClockRule(Rule):
    id = "DET001"
    name = "wall-clock"
    description = (
        "wall-clock reads (time.time/monotonic/sleep, datetime.now, ...) are "
        "banned in virtual-time code"
    )
    scopes = _DETERMINISTIC_SCOPES

    def applies_to(self, sf: SourceFile) -> bool:
        rel = sf.relpath
        # ``machine/backends/`` is the host-transport layer (sockets,
        # heartbeats, process reaping): wall-clock *is* its subject
        # matter, exactly like ``parallel/``.  Its determinism is
        # enforced dynamically instead, by the backend-conformance gate
        # (bit-identical products and commcheck graphs vs the simulator).
        # Entropy (DET002) and unordered iteration (DET003/4) stay banned
        # there.
        if rel is not None and rel.startswith("machine/backends/"):
            return False
        return super().applies_to(sf)

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, sf.imports)
            if name in _WALL_CLOCK:
                yield self.violation(
                    sf,
                    node,
                    f"wall-clock call {name}() in virtual-time code; "
                    "route through the cost model or suppress with a rationale",
                )


class RandomnessRule(Rule):
    id = "DET002"
    name = "unseeded-randomness"
    description = (
        "module-level random.* calls, random.Random() without a seed, and "
        "os.urandom/uuid4-style entropy are banned; use util.rng.DeterministicRNG"
    )
    scopes = _DETERMINISTIC_SCOPES

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, sf.imports)
            if name is None:
                continue
            if name == "random.Random":
                if not node.args and not node.keywords:
                    yield self.violation(
                        sf, node, "random.Random() without a seed is unseeded"
                    )
            elif name in _ENTROPY or name.startswith(("random.", "secrets.")):
                yield self.violation(
                    sf,
                    node,
                    f"nondeterministic entropy source {name}(); "
                    "use a seeded DeterministicRNG",
                )


def _is_set_expr(node: ast.expr, imports: dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func, imports) in {"set", "frozenset"}
    return False


def _parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    return {
        child: parent
        for parent in ast.walk(tree)
        for child in ast.iter_child_nodes(parent)
    }


def _consumed_order_insensitively(
    node: ast.AST, parents: dict[ast.AST, ast.AST], imports: dict[str, str]
) -> bool:
    """True when ``node`` is a direct argument of an order-insensitive
    consumer call, e.g. ``sorted(x for x in s)`` or ``sum({...})``."""
    parent = parents.get(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        return dotted_name(parent.func, imports) in ORDER_INSENSITIVE_CONSUMERS
    return False


class SetIterationRule(Rule):
    id = "DET003"
    name = "set-iteration"
    description = (
        "iterating a set in arbitrary order is banned unless wrapped in "
        "sorted() or fed to an order-insensitive consumer (sum/min/max/any/all)"
    )
    scopes = _DETERMINISTIC_SCOPES

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        parents = _parent_map(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, sf.imports):
                    yield self.violation(
                        sf,
                        node.iter,
                        "for-loop over a set has nondeterministic order; "
                        "iterate sorted(...) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                hazard = any(
                    _is_set_expr(gen.iter, sf.imports) for gen in node.generators
                )
                if not hazard:
                    continue
                if isinstance(node, ast.SetComp):
                    # building another set: order of construction is moot
                    continue
                if _consumed_order_insensitively(node, parents, sf.imports):
                    continue
                yield self.violation(
                    sf,
                    node,
                    "comprehension over a set has nondeterministic order; "
                    "wrap the source in sorted(...)",
                )


class DictViewIterationRule(Rule):
    id = "DET004"
    name = "dict-view-iteration"
    description = (
        "iterating .keys()/.values()/.items() in export-feeding code (obs/) "
        "must go through sorted() or an order-insensitive consumer"
    )
    scopes = ("obs/",)

    _VIEWS = frozenset({"keys", "values", "items"})

    def _is_view_call(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and not node.args
            and not node.keywords
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._VIEWS
        )

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        parents = _parent_map(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_view_call(node.iter):
                    yield self.violation(
                        sf,
                        node.iter,
                        "for-loop over a dict view relies on insertion order; "
                        "iterate sorted(...) for export-stable output",
                    )
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                hazard = any(self._is_view_call(gen.iter) for gen in node.generators)
                if not hazard:
                    continue
                if _consumed_order_insensitively(node, parents, sf.imports):
                    continue
                yield self.violation(
                    sf,
                    node,
                    "comprehension over a dict view relies on insertion order; "
                    "wrap the source in sorted(...)",
                )
