"""Lock-discipline rule (LOCK001).

Shared mutable fields are declared with a trailing ``# guarded-by:
<lock>`` comment on their assignment inside the owning class::

    class _SharedState:
        def __init__(self, ...):
            self.lock = threading.Lock()
            self.alive = [True] * size  # guarded-by: lock

The rule then flags any read or write of ``<obj>.alive`` in a function
body that is not lexically inside a ``with <lock>:`` block.  Lock
expressions are matched structurally:

- ``with self.lock:`` / ``with state.lock:`` — terminal attribute name,
- ``with self._locks[rank]:`` — subscript of a lock attribute,
- ``cond = self._locks[dest]`` then ``with cond:`` — simple local
  aliases, collected flow-insensitively per function,

so aliasing through ``self.state.lock`` and per-rank condition arrays
both count as holding the declared lock.  ``__init__`` and
``__setstate__`` bodies are exempt (the object is not shared before
construction — unpickling included — completes), as are nested
``def``/``lambda`` scopes, which are checked as functions in their own
right.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.lint.engine import Rule, SourceFile, Violation, iter_functions

__all__ = ["LockDisciplineRule"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


class LockDisciplineRule(Rule):
    id = "LOCK001"
    name = "lock-discipline"
    description = (
        "reads/writes of '# guarded-by: <lock>' fields must happen inside "
        "a 'with <lock>:' block in the enclosing function"
    )
    scopes = ("machine/", "core/", "obs/")

    def __init__(self) -> None:
        #: field name -> set of lock names that guard it
        self.guarded: dict[str, set[str]] = {}
        #: every lock name appearing in a guarded-by annotation
        self.lock_names: set[str] = set()

    # -- collect pass -----------------------------------------------------

    def prepare(self, files: Sequence[SourceFile]) -> None:
        self.guarded = {}
        self.lock_names = set()
        for sf in files:
            if not sf.guarded_lines:
                continue
            for node in ast.walk(sf.tree):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                lock = sf.guarded_lines.get(node.lineno)
                if lock is None:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    field: str | None = None
                    if isinstance(t, ast.Attribute):
                        field = t.attr
                    elif isinstance(t, ast.Name):
                        field = t.id
                    if field is not None:
                        self.guarded.setdefault(field, set()).add(lock)
                        self.lock_names.add(lock)

    # -- check pass -------------------------------------------------------

    def check(self, sf: SourceFile) -> Iterable[Violation]:
        if not self.guarded:
            return []
        out: list[Violation] = []
        for func in iter_functions(sf.tree):
            if func.name in ("__init__", "__setstate__"):
                continue
            aliases = self._collect_aliases(func)
            for stmt in func.body:
                self._visit(stmt, (), aliases, sf, out)
        return out

    def _collect_aliases(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, str]:
        """Local names assigned from a lock expression, flow-insensitively."""
        aliases: dict[str, str] = {}
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                lock = self._lock_of(node.value, {})
                if lock is not None:
                    aliases[node.targets[0].id] = lock
        return aliases

    def _lock_of(self, expr: ast.expr, aliases: dict[str, str]) -> str | None:
        """Lock name denoted by a with/assignment expression, if any."""
        while isinstance(expr, ast.Subscript):
            expr = expr.value
        if isinstance(expr, ast.Attribute) and expr.attr in self.lock_names:
            return expr.attr
        if isinstance(expr, ast.Name):
            if expr.id in aliases:
                return aliases[expr.id]
            if expr.id in self.lock_names:
                return expr.id
        return None

    def _visit(
        self,
        node: ast.AST,
        held: tuple[str, ...],
        aliases: dict[str, str],
        sf: SourceFile,
        out: list[Violation],
    ) -> None:
        if isinstance(node, _SCOPE_NODES):
            return  # separate scope, checked on its own
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    self._check_access(sub, held, sf, out)
                lock = self._lock_of(item.context_expr, aliases)
                if lock is not None:
                    acquired.append(lock)
            inner = held + tuple(acquired)
            for stmt in node.body:
                self._visit(stmt, inner, aliases, sf, out)
            return
        self._check_access(node, held, sf, out)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, aliases, sf, out)

    def _check_access(
        self,
        node: ast.AST,
        held: tuple[str, ...],
        sf: SourceFile,
        out: list[Violation],
    ) -> None:
        if not isinstance(node, ast.Attribute):
            return
        required = self.guarded.get(node.attr)
        if required is None:
            return
        if required & set(held):
            return
        mode = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
        locks = " or ".join(sorted(required))
        out.append(
            self.violation(
                sf,
                node,
                f"{mode} of guarded field {node.attr!r} outside "
                f"'with {locks}:' scope",
            )
        )
