"""Parallelism rule (PAR001).

Host-level parallelism is centralised in :mod:`repro.parallel`: its
:class:`~repro.parallel.WorkerPool` is the only component allowed to
spawn processes, because it is the only one that guarantees the
project's determinism contract (submission-order results, explicit
seeds, loud crash/timeout handling).  Raw ``multiprocessing``,
``concurrent.futures``, or ``os.fork`` use anywhere else would reopen
every hazard the pool exists to close — nondeterministic completion
order, silently dropped tasks, fork-with-locks corruption — so it is
banned outside ``parallel/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Rule, SourceFile, Violation, dotted_name

__all__ = ["RawParallelismRule"]

#: Modules whose import (outside ``parallel/``) means hand-rolled
#: process management.
_BANNED_MODULES = ("multiprocessing", "concurrent.futures", "concurrent")

#: Calls that fork the interpreter directly.
_BANNED_CALLS = frozenset({"os.fork", "os.forkpty"})


class RawParallelismRule(Rule):
    id = "PAR001"
    name = "raw-parallelism"
    description = (
        "importing multiprocessing/concurrent.futures or calling os.fork "
        "outside repro.parallel is banned; fan out through "
        "repro.parallel.WorkerPool"
    )

    def applies_to(self, sf: SourceFile) -> bool:
        rel = sf.relpath
        if rel is None:
            return False
        return not rel.startswith("parallel/")

    @staticmethod
    def _banned_module(module: str) -> bool:
        return any(
            module == banned or module.startswith(banned + ".")
            for banned in _BANNED_MODULES
        )

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._banned_module(alias.name):
                        yield self.violation(
                            sf,
                            node,
                            f"raw import of {alias.name!r}; use "
                            "repro.parallel.WorkerPool for process fan-out",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and self._banned_module(
                    node.module
                ):
                    yield self.violation(
                        sf,
                        node,
                        f"raw import from {node.module!r}; use "
                        "repro.parallel.WorkerPool for process fan-out",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func, sf.imports)
                if name in _BANNED_CALLS:
                    yield self.violation(
                        sf,
                        node,
                        f"direct {name}() call; use repro.parallel.WorkerPool "
                        "for process fan-out",
                    )
