"""Thread-creation rule (THR001).

Rank execution is centralised in :mod:`repro.machine.engines`: the
event engine owns the carrier threads (parked, one runnable at a time)
and the legacy thread engine owns the free-running kind.  A stray
``threading.Thread`` anywhere else reintroduces exactly the
nondeterminism the event engine was built to remove — wall-clock
interleavings, GIL-dependent schedules, wake-ups the scheduler cannot
see — and silently breaks the engine-conformance guarantee (both
engines byte-identical on every observable).  The process backends keep
their pump/reaper threads: they shuttle bytes between OS processes and
never touch rank scheduling.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Rule, SourceFile, Violation, dotted_name

__all__ = ["ThreadCreationRule"]

#: The only modules allowed to construct threads: the two engines (rank
#: carriers) and the process backends (I/O pump + reaper threads).
_ALLOWED = (
    "machine/engines/",
    "machine/backends/proc.py",
    "machine/backends/rankproc.py",
)

_BANNED_CALLS = frozenset({"threading.Thread", "threading.Timer"})


class ThreadCreationRule(Rule):
    id = "THR001"
    name = "thread-creation"
    description = (
        "creating threading.Thread/Timer outside repro.machine.engines "
        "and the process backends is banned; rank concurrency must go "
        "through the engine so the scheduler sees every wake-up"
    )

    def applies_to(self, sf: SourceFile) -> bool:
        rel = sf.relpath
        if rel is None:
            return False
        return not any(
            rel == allowed or rel.startswith(allowed) for allowed in _ALLOWED
        )

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, sf.imports)
            if name in _BANNED_CALLS:
                yield self.violation(
                    sf,
                    node,
                    f"direct {name}() creation; spawn rank work through "
                    "the machine engine (repro.machine.engines), not ad-hoc "
                    "threads",
                )
