"""Exactness rules (EXACT001-EXACT003).

The coding layer (Vandermonde / erasure codes over the rationals) and
the exact linear-algebra kernel must never leave exact arithmetic: one
stray ``float`` breaks the word-exact recovery the paper's Section 4
construction depends on.  Floats, true division, and floating ``math.*``
functions are banned in ``coding/`` and ``util/rational.py``; integer-
exact ``math`` helpers (gcd, isqrt, comb, ...) are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Rule, SourceFile, Violation, dotted_name

__all__ = ["FloatLiteralRule", "TrueDivisionRule", "MathFloatRule"]

_EXACT_SCOPES = ("coding/", "util/rational.py")

#: ``math`` functions that are exact on integer inputs.
MATH_EXACT_ALLOWLIST = frozenset(
    {"math.gcd", "math.lcm", "math.isqrt", "math.comb", "math.perm", "math.factorial"}
)


class FloatLiteralRule(Rule):
    id = "EXACT001"
    name = "float-literal"
    description = (
        "float/complex literals and float(...) conversions are banned in "
        "exact-arithmetic code; use Fraction"
    )
    scopes = _EXACT_SCOPES

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, (float, complex)
            ):
                yield self.violation(
                    sf,
                    node,
                    f"float literal {node.value!r} in exact-arithmetic code",
                )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func, sf.imports)
                if name in {"float", "complex"}:
                    yield self.violation(
                        sf, node, f"{name}(...) conversion in exact-arithmetic code"
                    )


class TrueDivisionRule(Rule):
    id = "EXACT002"
    name = "true-division"
    description = (
        "'/' true division is banned in exact-arithmetic code (int/int "
        "yields float); use Fraction or '//'"
    )
    scopes = _EXACT_SCOPES

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield self.violation(
                    sf,
                    node,
                    "true division '/' in exact-arithmetic code; int/int is a "
                    "float — use Fraction division or '//'",
                )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                yield self.violation(
                    sf,
                    node,
                    "augmented true division '/=' in exact-arithmetic code",
                )


class MathFloatRule(Rule):
    id = "EXACT003"
    name = "math-float-function"
    description = (
        "floating math.*/cmath.* functions are banned in exact-arithmetic "
        "code; only integer-exact helpers (gcd, lcm, isqrt, comb, perm, "
        "factorial) are allowed"
    )
    scopes = _EXACT_SCOPES

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, sf.imports)
            if name is None:
                continue
            if name.startswith("cmath."):
                yield self.violation(sf, node, f"complex-float call {name}()")
            elif name.startswith("math.") and name not in MATH_EXACT_ALLOWLIST:
                yield self.violation(
                    sf,
                    node,
                    f"floating-point call {name}() in exact-arithmetic code",
                )
