"""Output renderers for lint results: text, JSON, GitHub annotations."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult, Violation

__all__ = ["render_text", "render_json", "render_github", "FORMATS"]


def render_text(result: LintResult) -> str:
    lines = [v.render() for v in result.violations]
    noun = "file" if result.files_checked == 1 else "files"
    if result.violations:
        count = len(result.violations)
        vnoun = "violation" if count == 1 else "violations"
        lines.append(f"{count} {vnoun} in {result.files_checked} {noun} checked")
    else:
        lines.append(f"clean: {result.files_checked} {noun} checked")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "files_checked": result.files_checked,
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "severity": v.severity,
                "message": v.message,
            }
            for v in result.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _github_line(v: Violation) -> str:
    # https://docs.github.com/actions/reference/workflow-commands
    level = "error" if v.severity == "error" else "warning"
    return (
        f"::{level} file={v.path},line={v.line},col={v.col},"
        f"title={v.rule}::{v.message}"
    )


def render_github(result: LintResult) -> str:
    return "\n".join(_github_line(v) for v in result.violations)


FORMATS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
