"""Project-specific static analysis (``python -m repro lint``).

Machine-checks the invariants the test suite can only spot-check:
virtual-time code is wall-clock-free and deterministic (DET001-DET004),
shared state is touched only under its declared lock (LOCK001), the
coding layer stays in exact rational arithmetic (EXACT001-EXACT003),
and every cost charged in ``core/`` lands in a named phase (PHASE001).
See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and conventions.
"""

from repro.lint.engine import (
    LintResult,
    LintRunner,
    Rule,
    SourceFile,
    Violation,
)
from repro.lint.rules import default_rules, rule_catalog

__all__ = [
    "LintResult",
    "LintRunner",
    "Rule",
    "SourceFile",
    "Violation",
    "default_rules",
    "rule_catalog",
]
