"""``python -m repro lint`` entry point (wired into repro.cli)."""

from __future__ import annotations

from repro.lint.engine import LintRunner
from repro.lint.reporters import FORMATS
from repro.lint.rules import default_rules, rule_catalog

__all__ = ["run_lint", "list_rules_text"]


def list_rules_text() -> str:
    lines = []
    for entry in rule_catalog():
        lines.append(f"{entry['id']}  {entry['name']}  [{entry['scopes']}]")
        lines.append(f"    {entry['description']}")
    return "\n".join(lines)


def run_lint(
    paths: list[str],
    fmt: str = "text",
    select: list[str] | None = None,
) -> tuple[int, str]:
    """Lint ``paths`` and return ``(exit_code, rendered_report)``."""
    rules = default_rules()
    if select:
        wanted = set(select)
        unknown = wanted - {r.id for r in rules}
        if unknown:
            raise SystemExit(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.id in wanted]
    runner = LintRunner(rules)
    result = runner.run(paths)
    return result.exit_code, FORMATS[fmt](result)
