"""Rule engine for ``repro lint``.

The engine is deliberately small: a :class:`SourceFile` wraps one parsed
module (AST, comments, suppression/annotation maps), a :class:`Rule`
contributes :class:`Violation` objects for one file, and
:class:`LintRunner` drives a two-pass run — every rule first sees all
in-scope files (``prepare``, used by cross-file collectors such as the
lock-discipline rule) and is then asked to ``check`` each file.

Comment conventions understood here (and documented in
``docs/STATIC_ANALYSIS.md``):

``# repro-lint: disable=RULE1,RULE2``
    Suppress the listed rules on this line.  On a line of its own the
    comment applies to the next code line.  When that line is a ``def``
    header, the suppression covers the whole function body — for
    functions whose every statement is exempt by design (e.g. pre-thread
    instrumentation that touches guarded fields), one annotated header
    beats a wall of per-line comments.  Suppressions that never fire are
    themselves reported (``LINT001``); unknown rule ids are reported
    (``LINT002``).  A rationale may follow after `` -- ``.

``# repro-lint: in-phase``
    On (or directly above) a ``def``: the function intentionally relies
    on its *caller's* ``with comm.phase(...)`` context, so the
    phase-accounting rule skips it.

``# guarded-by: <lock>``
    On a field assignment inside a class: the field is shared mutable
    state protected by the named lock attribute.  Consumed by the
    lock-discipline rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "Rule",
    "SourceFile",
    "LintResult",
    "LintRunner",
    "dotted_name",
    "iter_functions",
    "UNUSED_SUPPRESSION",
    "UNKNOWN_RULE",
    "SYNTAX_ERROR",
]

UNUSED_SUPPRESSION = "LINT001"
UNKNOWN_RULE = "LINT002"
SYNTAX_ERROR = "LINT003"

#: Engine-level diagnostics (not Rule subclasses) shown by ``--list-rules``.
ENGINE_DIAGNOSTICS: dict[str, str] = {
    UNUSED_SUPPRESSION: "suppression comment never matched a violation",
    UNKNOWN_RULE: "suppression names a rule id the engine does not know",
    SYNTAX_ERROR: "file does not parse",
}

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,]+)")
_IN_PHASE_RE = re.compile(r"#\s*repro-lint:\s*in-phase\b")
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass(frozen=True)
class Violation:
    """One finding, anchored to ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _repro_relpath(path: Path) -> str | None:
    """Path relative to the innermost ``repro`` package directory.

    ``src/repro/machine/comm.py`` -> ``machine/comm.py``.  Rule scopes are
    matched against this, so fixture trees like ``tmp/repro/machine/x.py``
    scope exactly like the real package.  Returns ``None`` when the file
    is not under a ``repro`` directory.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            rel = parts[i + 1 :]
            return "/".join(rel) if rel else None
    return None


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/object they were imported as."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    out[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                for alias in node.names:
                    out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def dotted_name(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve an attribute chain to a dotted name, through the import map.

    ``time.monotonic()`` -> ``time.monotonic``; with
    ``from datetime import datetime``, ``datetime.now()`` resolves to
    ``datetime.datetime.now``.  Chains rooted at anything other than a
    plain name (``self._rng.random()``) return the literal chain rooted at
    the unresolved name, so module-level bans do not fire on attributes of
    local objects.
    """
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(imports.get(cur.id, cur.id))
    return ".".join(reversed(parts))


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """All function/method defs in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class SourceFile:
    """A parsed module plus the comment-level annotations rules consume."""

    def __init__(self, path: str | Path, text: str | None = None):
        self.path = Path(path)
        self.display = str(path)
        if text is None:
            text = self.path.read_text(encoding="utf-8")
        self.text = text
        self.lines = text.splitlines()
        self.relpath = _repro_relpath(self.path)
        self.tree: ast.Module = ast.parse(text, filename=self.display)
        self.imports = _import_map(self.tree)
        #: line -> set of rule ids suppressed on that line
        self.suppressions: dict[int, set[str]] = {}
        #: def/decorator lines carrying ``# repro-lint: in-phase``
        self.in_phase_lines: set[int] = set()
        #: assignment line -> lock name from ``# guarded-by: <lock>``
        self.guarded_lines: dict[int, str] = {}
        self._scan_comments()

    # -- comment scanning -------------------------------------------------

    def _effective_line(self, row: int, standalone: bool) -> int:
        """Trailing comments hit their own line; standalone comments apply
        to the next non-blank, non-comment line."""
        if not standalone:
            return row
        for i in range(row, len(self.lines)):
            stripped = self.lines[i].strip()
            if stripped and not stripped.startswith("#"):
                return i + 1
        return row

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                row, col = tok.start
                standalone = not self.lines[row - 1][:col].strip()
                m = _SUPPRESS_RE.search(tok.string)
                if m:
                    target = self._effective_line(row, standalone)
                    ids = {r for r in m.group(1).split(",") if r}
                    self.suppressions.setdefault(target, set()).update(ids)
                if _IN_PHASE_RE.search(tok.string):
                    self.in_phase_lines.add(self._effective_line(row, standalone))
                m = _GUARDED_RE.search(tok.string)
                if m:
                    target = self._effective_line(row, standalone)
                    self.guarded_lines[target] = m.group(1)
        except tokenize.TokenError:  # pragma: no cover - parse already passed
            pass


class Rule:
    """Base class: subclasses set the id/description/scopes and implement
    ``check`` (and optionally ``prepare`` for a cross-file collect pass)."""

    id: str = "RULE000"
    name: str = "unnamed"
    description: str = ""
    severity: str = "error"
    #: ``repro``-relative path prefixes this rule applies to; empty = all.
    scopes: tuple[str, ...] = ()

    def applies_to(self, sf: SourceFile) -> bool:
        if not self.scopes:
            return True
        rel = sf.relpath
        if rel is None:
            return False
        return any(rel == s or rel.startswith(s) for s in self.scopes)

    def prepare(self, files: Sequence[SourceFile]) -> None:
        """Cross-file collect pass; runs before any ``check``."""

    def check(self, sf: SourceFile) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, sf: SourceFile, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.id,
            path=sf.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


@dataclass
class LintResult:
    violations: list[Violation]
    files_checked: int

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0


class LintRunner:
    """Load files, run every rule, apply suppressions, report leftovers."""

    def __init__(self, rules: Sequence[Rule] | None = None):
        if rules is None:
            from repro.lint.rules import default_rules

            rules = default_rules()
        self.rules: list[Rule] = list(rules)
        self.known_ids = {r.id for r in self.rules} | set(ENGINE_DIAGNOSTICS)

    # -- file discovery ---------------------------------------------------

    @staticmethod
    def discover(paths: Sequence[str | Path]) -> list[Path]:
        seen: set[Path] = set()
        out: list[Path] = []
        for p in paths:
            p = Path(p)
            if p.is_dir():
                candidates = sorted(
                    f
                    for f in p.rglob("*.py")
                    if not any(
                        part.startswith(".") or part == "__pycache__"
                        for part in f.parts
                    )
                )
            else:
                candidates = [p]
            for f in candidates:
                key = f.resolve()
                if key not in seen:
                    seen.add(key)
                    out.append(f)
        return out

    # -- main entry point -------------------------------------------------

    def run(self, paths: Sequence[str | Path]) -> LintResult:
        violations: list[Violation] = []
        files: list[SourceFile] = []
        for path in self.discover(paths):
            try:
                files.append(SourceFile(path))
            except SyntaxError as exc:
                violations.append(
                    Violation(
                        rule=SYNTAX_ERROR,
                        path=str(path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                        message=f"syntax error: {exc.msg}",
                    )
                )

        for rule in self.rules:
            rule.prepare([sf for sf in files if rule.applies_to(sf)])

        for sf in files:
            raw: list[Violation] = []
            for rule in self.rules:
                if rule.applies_to(sf):
                    raw.extend(rule.check(sf))
            violations.extend(self._apply_suppressions(sf, raw))

        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return LintResult(violations=violations, files_checked=len(files))

    def _apply_suppressions(
        self, sf: SourceFile, raw: list[Violation]
    ) -> list[Violation]:
        # Suppressions on a `def` header extend over the function body.
        func_spans: list[tuple[int, int]] = [
            (f.lineno, f.end_lineno or f.lineno)
            for f in iter_functions(sf.tree)
            if f.lineno in sf.suppressions
        ]
        used: set[tuple[int, str]] = set()
        kept: list[Violation] = []
        for v in raw:
            if v.rule in sf.suppressions.get(v.line, ()):
                used.add((v.line, v.rule))
                continue
            span = next(
                (
                    (start, end)
                    for start, end in func_spans
                    if start <= v.line <= end
                    and v.rule in sf.suppressions.get(start, ())
                ),
                None,
            )
            if span is not None:
                used.add((span[0], v.rule))
            else:
                kept.append(v)
        for line in sorted(sf.suppressions):
            for rule_id in sorted(sf.suppressions[line]):
                if (line, rule_id) in used:
                    continue
                if rule_id not in self.known_ids:
                    kept.append(
                        Violation(
                            rule=UNKNOWN_RULE,
                            path=sf.display,
                            line=line,
                            col=1,
                            message=f"suppression names unknown rule id {rule_id!r}",
                        )
                    )
                else:
                    kept.append(
                        Violation(
                            rule=UNUSED_SUPPRESSION,
                            path=sf.display,
                            line=line,
                            col=1,
                            message=(
                                f"unused suppression: {rule_id} did not fire "
                                "on this line"
                            ),
                        )
                    )
        return kept
