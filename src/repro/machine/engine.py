"""The SPMD execution engine.

:class:`Machine` owns the shared state (router, memories, clocks, fault
schedule) and runs a rank program — an ordinary Python function
``program(comm, *args) -> result`` — one logical processor per rank.  How
ranks are scheduled is the *engine*'s business (docs/MACHINE.md
"Engines"): the default ``event`` engine is a deterministic cooperative
scheduler (one runnable rank at a time, virtual-time quiescence for hang
detection) that scales to thousands of ranks; the legacy ``thread``
engine runs free OS threads and remains the differential-testing
reference.  Either way the GIL is irrelevant to the model: we measure
operation *counts*, not wall time.

:class:`RunResult` carries per-rank return values, the critical-path cost
triple (element-wise max of the per-rank vector clocks — see
:mod:`repro.machine.costs`), per-phase breakdowns, peak memory, and the
fault log.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.machine.comm import Communicator, _SharedState
from repro.machine.costs import Counts, CostModel, PhaseLedger
from repro.machine.engines import resolve_engine
from repro.machine.errors import HardFault, MachineError
from repro.machine.fault import FaultLog, FaultSchedule
from repro.machine.memory import LocalMemory
from repro.machine.network import Router
from repro.obs.tracer import Tracer, make_tracer
from repro.util.env import backend as backend_choice
from repro.util.env import racecheck_enabled, scaled_timeout

__all__ = ["Machine", "RunResult", "merge_phase_costs", "raise_run_errors"]


def merge_phase_costs(ledgers: Sequence[PhaseLedger]) -> dict[str, Counts]:
    """Per-phase cost maxima over all ranks, in first-seen ledger order.

    Shared by the simulator and the process backend so both assemble
    ``RunResult.phase_costs`` with identical keys *and* key order.
    """
    phase_names: list[str] = []
    for ledger in ledgers:
        for name in ledger.phases():
            if name not in phase_names:
                phase_names.append(name)
    return {
        name: PhaseLedger.max_over(list(ledgers), name) for name in phase_names
    }


def raise_run_errors(errors: dict[int, BaseException]) -> None:
    """Raise the canonical run failure for collected per-rank errors.

    A single uncaught :class:`HardFault` is re-raised raw (callers pattern
    match on it); anything else folds into one :class:`MachineError`
    enumerating every failed rank.  Shared by both backends so error
    surfaces are bit-compatible.
    """
    failed = sorted(errors.items())
    _, exc = failed[0]
    if isinstance(exc, HardFault) and len(errors) == 1:
        raise exc
    detail = "; ".join(f"rank {r}: {e!r}" for r, e in failed)
    raise MachineError(f"{len(errors)} rank(s) failed: {detail}") from exc


@dataclass
class RunResult:
    """Outcome of one SPMD run."""

    results: list[Any]
    critical_path: Counts
    per_rank: list[Counts]
    phase_costs: dict[str, Counts]
    peak_memory: list[int]
    fault_log: FaultLog
    errors: dict[int, BaseException] = field(default_factory=dict)
    #: The tracer the run executed under (None when tracing was off).
    trace: Tracer | None = None
    #: The tracer's aggregate metrics (None when tracing was off).
    metrics: Any = None
    #: Race reports from the happens-before sanitizer
    #: (:class:`~repro.racecheck.sanitizer.RaceReport`); always empty when
    #: the run was not sanitized.
    races: list[Any] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def runtime(self, model: CostModel) -> float:
        """Modeled runtime ``C = alpha*L + beta*BW + gamma*F``."""
        return model.runtime(self.critical_path)

    def max_peak_memory(self) -> int:
        return max(self.peak_memory) if self.peak_memory else 0


class Machine:
    """A simulated machine of ``size`` processors.

    Parameters
    ----------
    size:
        Number of processors ``P`` (plus any code processors the caller
        includes — the machine does not distinguish).
    memory_words:
        Local memory capacity ``M`` per processor in words
        (``math.inf`` = the unlimited-memory regime of Table 1).
    word_bits:
        Machine word width; a product of two words fits hardware, i.e. the
        ``s`` of Algorithm 1 is ``2**word_bits``.
    fault_schedule:
        Hard-fault injection plan (empty by default).
    timeout:
        Per-receive deadlock timeout in seconds.  The effective value is
        ``timeout * REPRO_TIMEOUT_SCALE`` (default scale 1.0): the
        watchdog is host-level wall-clock slack, not part of the modeled
        execution, so loaded CI hosts stretch it via the environment
        without touching any virtual-time quantity
        (:func:`repro.util.env.timeout_scale`).
    trace:
        Observability switch (off by default — a no-op tracer that adds
        one branch per machine op and never snapshots a clock).  Pass
        ``True`` for a :class:`~repro.obs.tracer.RecordingTracer` under
        the unit cost model, a :class:`~repro.machine.costs.CostModel`
        to pick the virtual-time weights, or a
        :class:`~repro.obs.tracer.Tracer` instance.  Tracing never
        charges costs: ``RunResult.critical_path`` is identical with and
        without it.
    recorder:
        Optional :class:`~repro.machine.record.ScheduleRecorder`
        (``commcheck`` schedule extraction).  Purely observational — it
        records the communication structure and never alters costs,
        matching, or control flow.
    sanitize:
        Happens-before race detection switch (see
        docs/STATIC_ANALYSIS.md "Race detection").  ``None`` (default)
        defers to the ``REPRO_RACECHECK`` environment variable; ``True``
        runs under a fresh
        :class:`~repro.racecheck.sanitizer.RaceSanitizer`; ``False``
        forces the detector off regardless of the environment; a
        :class:`~repro.racecheck.sanitizer.RaceSanitizer` instance is
        used directly (tests inspect it afterwards).  Race reports land
        in ``RunResult.races``.  With the detector off nothing is
        instrumented and the run is byte-identical to one on a build
        without the sanitizer.
    backend:
        Execution backend: ``"sim"`` (in-process simulator),
        ``"proc"`` (one OS process per rank over localhost sockets — see
        docs/MACHINE.md "Backends"), or ``None`` (default) to defer to
        ``REPRO_BACKEND`` at each :meth:`run`.  Both backends are
        conformance-gated to produce identical results and communication
        schedules.
    engine:
        Scheduling engine for the ``sim`` backend (docs/MACHINE.md
        "Engines"): ``"event"`` (deterministic cooperative scheduler,
        the default), ``"thread"`` (legacy free-running threads), or
        ``None`` (default) to defer to ``REPRO_ENGINE`` at each
        :meth:`run`.  Sanitized runs always use the thread engine —
        race detection targets the concurrent implementation.  Both
        engines are conformance-gated byte-identical
        (tests/machine/test_engine_conformance.py).
    """

    def __init__(
        self,
        size: int,
        memory_words: float = math.inf,
        word_bits: int = 64,
        fault_schedule: FaultSchedule | None = None,
        timeout: float = 60.0,
        topology: Any = None,
        trace: Any = None,
        recorder: Any = None,
        sanitize: Any = None,
        backend: str | None = None,
        engine: str | None = None,
    ):
        if size <= 0:
            raise ValueError("size must be positive")
        if word_bits <= 0:
            raise ValueError("word_bits must be positive")
        if topology is not None and topology.size != size:
            raise ValueError(
                f"topology covers {topology.size} nodes, machine has {size}"
            )
        if backend not in (None, "sim", "proc"):
            raise ValueError(f"backend must be sim or proc, got {backend!r}")
        if engine not in (None, "event", "thread"):
            raise ValueError(f"engine must be event or thread, got {engine!r}")
        self.size = size
        self.memory_words = memory_words
        self.word_bits = word_bits
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.fault_schedule = fault_schedule or FaultSchedule()
        self.timeout = scaled_timeout(timeout)
        self.topology = topology
        self.tracer = make_tracer(trace)
        self.recorder = recorder
        self.sanitize = sanitize
        #: Explicit backend override; None defers to ``REPRO_BACKEND`` at
        #: each :meth:`run` (so scoping the variable around code that
        #: builds machines internally selects the backend for all of them).
        self.backend = backend
        #: Explicit engine override; None defers to ``REPRO_ENGINE`` at
        #: each :meth:`run`, mirroring the backend resolution.
        self.engine = engine

    def run(
        self,
        program: Callable[..., Any],
        args: Sequence[Any] = (),
        rank_args: Sequence[Sequence[Any]] | None = None,
        raise_on_error: bool = True,
    ) -> RunResult:
        """Run ``program(comm, *args)`` SPMD on all ranks.

        ``rank_args`` optionally gives per-rank argument tuples instead of
        the shared ``args``.  Uncaught rank exceptions are collected into
        ``RunResult.errors`` (and re-raised unless ``raise_on_error`` is
        False — deliberately-failing runs, e.g. a non-fault-tolerant
        algorithm under fault injection, pass False and inspect the
        result).
        """
        if rank_args is not None and len(rank_args) != self.size:
            raise ValueError("rank_args must have one tuple per rank")
        choice = self.backend if self.backend is not None else backend_choice()
        if choice == "proc":
            from repro.machine.backends.proc import ProcBackend

            return ProcBackend(self).run(
                program, args, rank_args, raise_on_error
            )
        router = Router(self.size, default_timeout=self.timeout)
        memories = [
            LocalMemory(self.memory_words, rank=r) for r in range(self.size)
        ]
        tracer = self.tracer
        state = _SharedState(
            size=self.size,
            router=router,
            word_bits=self.word_bits,
            memories=memories,
            fault_schedule=self.fault_schedule,
            fault_log=FaultLog(),
            timeout=self.timeout,
            topology=self.topology,
            tracer=tracer,
            recorder=self.recorder,
        )
        if tracer.enabled:
            self._wire_tracer(state, memories)
        sanitizer = self._resolve_sanitizer()
        if sanitizer is not None:
            sanitizer.instrument(state)
        results: list[Any] = [None] * self.size
        errors: dict[int, BaseException] = {}
        lock = threading.Lock()

        def runner(rank: int) -> None:
            if sanitizer is not None:
                sanitizer.on_thread_begin(f"rank-{rank}")
            comm = Communicator(state, rank)
            try:
                a = rank_args[rank] if rank_args is not None else args
                out = program(comm, *a)
                with lock:
                    results[rank] = out
            except BaseException as exc:  # noqa: BLE001 - collected and reported
                with lock:
                    errors[rank] = exc
                # A rank that dies outside the fault protocol is dead for
                # everyone: flip the liveness flag so peers unblock fast.
                with state.lock:
                    state.alive[rank] = False
            finally:
                # Finished (returned or raised) means no further sends will
                # ever be posted: receivers still blocked on this rank fail
                # over to PeerDead instead of waiting out the deadlock
                # detector.
                with state.lock:
                    state.finished[rank] = True

        if resolve_engine(self.engine, sanitizer) == "event":
            from repro.machine.engines.event import EventEngine

            EventEngine(state).execute(runner)
        else:
            from repro.machine.engines.thread import ThreadEngine

            ThreadEngine(state, sanitizer).execute(runner)

        # Engine completion is a happens-before edge, but take the same
        # lock the runners write under anyway: the snapshot must be safe
        # even if a deadlocked straggler thread is still limping along.
        with lock:
            results = list(results)
            errors = dict(errors)
        per_rank = [c.snapshot() for c in state.clocks]
        critical = Counts()
        for c in per_rank:
            critical = critical.merge(c)
        phase_costs = merge_phase_costs(state.ledgers)
        result = RunResult(
            results=results,
            critical_path=critical,
            per_rank=per_rank,
            phase_costs=phase_costs,
            peak_memory=[m.peak for m in memories],
            fault_log=state.fault_log,
            errors=errors,
            trace=tracer if tracer.enabled else None,
            metrics=getattr(tracer, "metrics", None) if tracer.enabled else None,
        )
        if sanitizer is not None:
            from repro.racecheck.collector import publish_races

            result.races = sanitizer.finish()
            # Callers that cannot reach this RunResult (variants build
            # their machines internally) drain reports via the collector.
            publish_races(result.races)
        if errors and raise_on_error:
            raise_run_errors(errors)
        return result

    def _resolve_sanitizer(self) -> Any:
        """The sanitizer for this run, or None (the common case).

        Resolution happens per run — not in ``__init__`` — so variant
        factories that build machines internally pick up
        ``REPRO_RACECHECK`` scoped by the racecheck runner around
        ``spec.execute``."""
        sanitize = self.sanitize
        if sanitize is None:
            if not racecheck_enabled():
                return None
            sanitize = True
        if sanitize is False:
            return None
        from repro.racecheck.sanitizer import RaceSanitizer

        if isinstance(sanitize, RaceSanitizer):
            return sanitize
        return RaceSanitizer()

    def _wire_tracer(self, state: _SharedState, memories: list[LocalMemory]) -> None:
        """Attach the fault-log and memory high-water observers.

        Both callbacks fire on the observed rank's own thread, so reading
        that rank's clock/ledger/incarnation is race-free."""
        tracer = state.tracer

        def on_fault(entry: FaultLog.Entry) -> None:
            tracer.on_fault(
                entry.rank,
                entry.phase,
                state.clocks[entry.rank].snapshot(),
                entry.incarnation,
                entry.kind,
                entry.op_index,
            )

        state.fault_log.on_record = on_fault
        for rank, memory in enumerate(memories):

            def on_peak(mem: LocalMemory, rank: int = rank) -> None:
                tracer.on_mem_peak(
                    rank,
                    state.ledgers[rank].current_phase,
                    state.clocks[rank].snapshot(),
                    # Lock-free on purpose: the callback runs on rank's own
                    # thread, and a rank's incarnation slot is only written
                    # from that thread (begin_replacement).
                    state.incarnations[rank],  # repro-lint: disable=LOCK001
                    mem.in_use,
                    mem.peak,
                )

            memory.on_peak = on_peak
