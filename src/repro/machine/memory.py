"""Per-processor local memory with word-level accounting.

Each simulated processor owns a :class:`LocalMemory` with a capacity of
``M`` words (Section 2.1).  Algorithms register their buffers so the
simulator can (a) enforce the limited-memory regime of Table 2 — running a
BFS-only schedule with too little memory raises
:class:`~repro.machine.errors.MemoryExceeded` — and (b) report the peak
footprint, which Lemma 3.1's analysis predicts grows by ``(2k-1)/k`` per BFS
step.

A hard fault wipes the memory (the paper: "the affected processor ...
loses its data").
"""

from __future__ import annotations

import math
from typing import Callable

from repro.machine.errors import MemoryExceeded

__all__ = ["LocalMemory"]


class LocalMemory:
    """Named-buffer word accounting with capacity enforcement.

    Parameters
    ----------
    capacity_words:
        Local memory size ``M`` in words; ``math.inf`` (the default) models
        the unlimited-memory case of Table 1.
    rank:
        Owning rank, for error messages.
    """

    def __init__(self, capacity_words: float = math.inf, rank: int = -1):
        if capacity_words <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_words
        self.rank = rank
        self._buffers: dict[str, int] = {}
        self._in_use = 0
        self._peak = 0
        self.wipe_count = 0
        #: Optional observer called as ``on_peak(memory)`` from the owning
        #: rank's thread whenever the high-water mark rises (the engine
        #: wires this to the tracer; None = untraced, zero overhead).
        self.on_peak: Callable[[LocalMemory], None] | None = None

    # -- accounting -------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Words currently allocated."""
        return self._in_use

    @property
    def peak(self) -> int:
        """High-water mark of allocated words over the processor's life."""
        return self._peak

    def allocate(self, name: str, words: int) -> None:
        """Allocate (or grow/shrink to) ``words`` words under ``name``."""
        if words < 0:
            raise ValueError("words must be non-negative")
        old = self._buffers.get(name, 0)
        new_total = self._in_use - old + words
        if new_total > self.capacity:
            raise MemoryExceeded(self.rank, words, self._in_use - old, self.capacity)
        self._buffers[name] = words
        self._in_use = new_total
        if new_total > self._peak:
            self._peak = new_total
            if self.on_peak is not None:
                self.on_peak(self)

    def free(self, name: str) -> None:
        """Release the buffer ``name`` (missing names are ignored)."""
        words = self._buffers.pop(name, 0)
        self._in_use -= words

    def usage(self, name: str) -> int:
        return self._buffers.get(name, 0)

    def buffers(self) -> dict[str, int]:
        return dict(self._buffers)

    def wipe(self) -> None:
        """Destroy all contents (hard-fault data loss). Peak is preserved —
        it describes the physical slot, not one incarnation."""
        self._buffers.clear()
        self._in_use = 0
        self.wipe_count += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if math.isinf(self.capacity) else str(self.capacity)
        return f"LocalMemory(rank={self.rank}, in_use={self._in_use}, capacity={cap})"
