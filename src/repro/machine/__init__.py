"""A simulated distributed-memory parallel machine.

This subpackage implements the machine model of the paper (Section 2.1):
``P`` identical processors with local memories of ``M`` words connected by a
peer-to-peer network.  Costs are counted exactly as the paper counts them —
``F`` arithmetic operations, ``BW`` words and ``L`` messages **along the
critical path** (Yang & Miller critical-path accounting) — via vector logical
clocks that merge on message receipt.  Total modeled runtime is
``C = alpha*L + beta*BW + gamma*F``.

Hard faults follow the paper's semantics: the affected processor stops,
loses all of its data, and is replaced by an alternative processor that takes
over its grid position (simulated as a fresh *incarnation* of the same rank
with wiped memory).

The public surface mirrors an MPI-like API (:class:`Communicator` with
``send``/``recv`` and the collectives of Section 2.4) so the algorithm code
in :mod:`repro.core` reads like ordinary MPI code.
"""

from repro.machine.errors import (
    CommError,
    DeadlockError,
    HardFault,
    MachineError,
    MemoryExceeded,
    PeerDead,
)
from repro.machine.costs import Counts, CostClock, CostModel, PhaseLedger
from repro.machine.memory import LocalMemory
from repro.machine.fault import FaultEvent, FaultSchedule, RandomFaultModel, FaultLog
from repro.machine.comm import Communicator
from repro.machine.engine import Machine, RunResult
from repro.machine.grid import ProcessorGrid, rank_digits, digits_to_rank
from repro.machine import collectives
from repro.machine.topology import (
    Topology,
    FullyConnected,
    Ring,
    Mesh2D,
    Torus2D,
    Hypercube,
    FatTree,
)

__all__ = [
    "MachineError",
    "HardFault",
    "PeerDead",
    "DeadlockError",
    "MemoryExceeded",
    "CommError",
    "Counts",
    "CostClock",
    "CostModel",
    "PhaseLedger",
    "LocalMemory",
    "FaultEvent",
    "FaultSchedule",
    "RandomFaultModel",
    "FaultLog",
    "Communicator",
    "Machine",
    "RunResult",
    "ProcessorGrid",
    "rank_digits",
    "digits_to_rank",
    "collectives",
    "Topology",
    "FullyConnected",
    "Ring",
    "Mesh2D",
    "Torus2D",
    "Hypercube",
    "FatTree",
]
