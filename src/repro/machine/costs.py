"""Cost accounting: F / BW / L along the critical path.

The paper (Section 2.1) counts three costs along the critical path as
defined by Yang & Miller:

- ``F``  — arithmetic operations,
- ``BW`` — words moved (bandwidth cost),
- ``L``  — messages (latency cost),

and models total runtime ``C = alpha*L + beta*BW + gamma*F``.

We track these with a per-rank **vector logical clock**
(:class:`CostClock`).  Local arithmetic advances the rank's own ``f``; a
send advances the sender's ``bw``/``l`` and stamps the message with a copy
of the sender's clock; a receive first merges (element-wise max) the
message's clock into the receiver's and then charges the message's
``bw``/``l`` on the receiver side of the transfer.  After the run the
element-wise maximum over all ranks is, for each component, exactly the cost
of that component along the critical path — dependency chains through the
network are accounted for automatically, just like a Lamport clock computes
the longest chain of causally ordered events.

Per-rank, per-phase *local* tallies (:class:`PhaseLedger`) are kept
separately (no merging) for diagnostic breakdowns such as "words sent during
the evaluation phase".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Counts", "CostClock", "CostModel", "PhaseLedger"]


@dataclass(frozen=True)
class Counts:
    """An immutable (F, BW, L) cost triple."""

    f: int = 0
    bw: int = 0
    l: int = 0

    def __add__(self, other: "Counts") -> "Counts":
        return Counts(self.f + other.f, self.bw + other.bw, self.l + other.l)

    def __sub__(self, other: "Counts") -> "Counts":
        return Counts(self.f - other.f, self.bw - other.bw, self.l - other.l)

    def merge(self, other: "Counts") -> "Counts":
        """Element-wise maximum (vector-clock join)."""
        return Counts(max(self.f, other.f), max(self.bw, other.bw), max(self.l, other.l))

    def is_zero(self) -> bool:
        return self.f == 0 and self.bw == 0 and self.l == 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"F={self.f} BW={self.bw} L={self.l}"


class CostClock:
    """Mutable per-rank logical clock over the (F, BW, L) cost vector."""

    __slots__ = ("f", "bw", "l")

    def __init__(self, f: int = 0, bw: int = 0, l: int = 0):
        self.f = f
        self.bw = bw
        self.l = l

    def snapshot(self) -> Counts:
        return Counts(self.f, self.bw, self.l)

    def charge_flops(self, ops: int) -> None:
        """Charge ``ops`` local arithmetic operations."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        self.f += ops

    def charge_message(self, words: int) -> None:
        """Charge one message of ``words`` words (one network transfer end)."""
        if words < 0:
            raise ValueError("words must be non-negative")
        self.bw += words
        self.l += 1

    def merge(self, other: Counts) -> None:
        """Join a remote clock (on message receipt)."""
        if other.f > self.f:
            self.f = other.f
        if other.bw > self.bw:
            self.bw = other.bw
        if other.l > self.l:
            self.l = other.l

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostClock(f={self.f}, bw={self.bw}, l={self.l})"


@dataclass(frozen=True)
class CostModel:
    """Machine cost parameters: per-message latency ``alpha``, per-word
    bandwidth cost ``beta``, per-op arithmetic time ``gamma``."""

    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 1.0

    def runtime(self, counts: Counts) -> float:
        """Modeled runtime ``C = alpha*L + beta*BW + gamma*F``."""
        return self.alpha * counts.l + self.beta * counts.bw + self.gamma * counts.f


class PhaseLedger:
    """Per-phase local (unmerged) cost tallies for one rank.

    These are plain per-rank counters — what this rank itself did during
    each named phase — used for breakdown tables.  Critical-path numbers
    come from :class:`CostClock` instead.
    """

    def __init__(self) -> None:
        self._phases: dict[str, Counts] = {}
        self._order: list[str] = []
        self.current_phase: str = "init"

    def _register(self, name: str) -> None:
        """Single registration path for ``_phases`` and ``_order``.

        The old ``charge`` re-checked membership after reading ``_phases``
        and could append ``name`` to ``_order`` twice when two paths raced
        to register the same phase.  ``dict.setdefault`` is a single
        atomic check-and-insert, so exactly one caller observes its own
        sentinel back and appends.
        """
        sentinel = Counts()
        if self._phases.setdefault(name, sentinel) is sentinel:
            self._order.append(name)

    def set_phase(self, name: str) -> None:
        self.current_phase = name
        self._register(name)

    def charge(self, f: int = 0, bw: int = 0, l: int = 0) -> None:
        name = self.current_phase
        self._register(name)
        self._phases[name] = self._phases[name] + Counts(f, bw, l)

    def phases(self) -> list[str]:
        return list(self._order)

    def get(self, name: str) -> Counts:
        return self._phases.get(name, Counts())

    def total(self) -> Counts:
        acc = Counts()
        for c in self._phases.values():
            acc = acc + c
        return acc

    @staticmethod
    def max_over(ledgers: list["PhaseLedger"], phase: str) -> Counts:
        """Max-over-ranks cost of one phase (per-phase critical path)."""
        acc = Counts()
        for ledger in ledgers:
            acc = acc.merge(ledger.get(phase))
        return acc
