"""Exception hierarchy of the simulated machine."""

from __future__ import annotations

__all__ = [
    "MachineError",
    "HardFault",
    "PeerDead",
    "DeadlockError",
    "MemoryExceeded",
    "CommError",
]


class MachineError(Exception):
    """Base class for all simulated-machine errors."""


class HardFault(MachineError):
    """Raised inside a rank when its scheduled hard fault triggers.

    Semantics follow the paper (Section 2.1): the processor ceases
    operation and loses its data.  Fault-tolerant rank programs catch this
    at their top level and re-enter as the *replacement* processor.
    """

    def __init__(self, rank: int, phase: str, op_index: int):
        super().__init__(f"hard fault on rank {rank} in phase {phase!r} at op {op_index}")
        self.rank = rank
        self.phase = phase
        self.op_index = op_index

    def __reduce__(self) -> tuple:
        # The custom __init__ signature defeats Exception's default pickle
        # protocol; the process backend ships these across rank sockets.
        return (HardFault, (self.rank, self.phase, self.op_index))


class PeerDead(MachineError):
    """Raised when communicating with a rank known to be dead."""

    def __init__(self, peer: int):
        super().__init__(f"peer rank {peer} is dead")
        self.peer = peer

    def __reduce__(self) -> tuple:
        return (PeerDead, (self.peer,))


class DeadlockError(MachineError):
    """A blocking receive timed out — almost always a protocol bug."""


class MemoryExceeded(MachineError):
    """A local memory allocation exceeded the per-processor capacity M."""

    def __init__(self, rank: int, requested: int, in_use: int, capacity: int):
        super().__init__(
            f"rank {rank}: allocation of {requested} words exceeds capacity "
            f"(in use {in_use} of {capacity})"
        )
        self.rank = rank
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity

    def __reduce__(self) -> tuple:
        return (
            MemoryExceeded,
            (self.rank, self.requested, self.in_use, self.capacity),
        )


class CommError(MachineError):
    """Misuse of the communication layer (bad rank, bad tag, ...)."""
