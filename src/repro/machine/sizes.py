"""Measuring payload sizes in machine words.

The bandwidth cost BW counts *words*.  A word is ``word_bits`` wide (the
machine's ``s`` parameter from Algorithm 1 is ``2**word_bits``).  Python
objects crossing the simulated network are measured here: integers by their
bit length, containers by the sum of their elements, and objects may opt in
by exposing a ``words(word_bits)`` method (as
:class:`repro.bigint.limbs.LimbVector` does).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from repro.util.words import bits_to_words

__all__ = ["payload_words"]


def payload_words(obj: Any, word_bits: int) -> int:
    """Size of ``obj`` in ``word_bits``-wide machine words.

    Sizing rules:

    - ``None`` and control-only values cost one word,
    - ``int`` costs ``ceil(bit_length / word_bits)`` words (min 1),
    - ``Fraction`` costs the numerator plus the denominator,
    - tuples/lists/dicts cost the sum of their items,
    - objects with a ``words(word_bits)`` method delegate to it.
    """
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return bits_to_words(obj.bit_length(), word_bits)
    if isinstance(obj, Fraction):
        return payload_words(obj.numerator, word_bits) + payload_words(
            obj.denominator, word_bits
        )
    if isinstance(obj, (list, tuple)):
        return sum(payload_words(x, word_bits) for x in obj) if obj else 1
    if isinstance(obj, dict):
        if not obj:
            return 1
        return sum(
            payload_words(k, word_bits) + payload_words(v, word_bits)
            for k, v in obj.items()
        )
    if isinstance(obj, str):
        return max(1, (len(obj) * 8 + word_bits - 1) // word_bits)
    words_method = getattr(obj, "words", None)
    if callable(words_method):
        return words_method(word_bits)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")
