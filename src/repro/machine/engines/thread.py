"""The legacy free-running thread-per-rank engine.

One daemon OS thread per rank, all runnable at once; blocking Communicator
calls poll the router/gates on the wall clock and a ``join_grace`` watchdog
catches wedged ranks.  Retained for one release as the differential-testing
reference for the event engine (tests/machine/test_engine_conformance.py)
and as the execution vehicle for the race sanitizer, which needs real
concurrency to have anything to detect.

This module is the only place outside the backends glue allowed to create
``threading.Thread`` rank carriers directly (lint rule THREAD001); the
event engine's suspended-stack carriers go through its own scheduler.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.machine.comm import _SharedState
from repro.machine.errors import MachineError
from repro.util.env import join_grace

__all__ = ["ThreadEngine"]


class ThreadEngine:
    """Free-running dispatch: start every rank, join with a grace bound."""

    name = "thread"

    def __init__(self, state: _SharedState, sanitizer: Any = None):
        self._state = state
        self._sanitizer = sanitizer

    def execute(self, runner: Callable[[int], None]) -> None:
        sanitizer = self._sanitizer
        threads = [
            threading.Thread(target=runner, args=(r,), name=f"rank-{r}", daemon=True)
            for r in range(self._state.size)
        ]
        for t in threads:
            if sanitizer is not None:
                # Spawn edge: the child inherits the parent's clock.
                sanitizer.on_thread_create(t.name)
            t.start()
        for t in threads:
            t.join(timeout=join_grace(self._state.timeout))
            if t.is_alive():
                raise MachineError(f"{t.name} failed to terminate (deadlock?)")
            if sanitizer is not None:
                # Join edge: the parent folds the child's final clock back.
                sanitizer.on_thread_join(t.name)
