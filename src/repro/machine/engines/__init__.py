"""Scheduling engines for the in-process (``sim``) backend.

Two engines execute the same rank programs against the same shared state
(:class:`~repro.machine.comm._SharedState`), and are conformance-gated to
produce byte-identical results (docs/MACHINE.md "Engines"):

:mod:`repro.machine.engines.event`
    The default.  A deterministic cooperative scheduler: exactly one rank
    runs at any instant, ranks hand control back at every blocking
    Communicator call, and hangs are detected by virtual-time quiescence
    instead of wall-clock timeouts.  Scales to thousands of ranks.

:mod:`repro.machine.engines.thread`
    The legacy free-running thread-per-rank engine, retained for one
    release as the differential-testing reference and as the execution
    vehicle for the happens-before race sanitizer (which targets the
    concurrent implementation).

Selection order (resolved per :meth:`~repro.machine.engine.Machine.run`):
``Machine(engine=...)`` if given, else ``REPRO_ENGINE``, with sanitized
runs always forced onto the thread engine.
"""

from __future__ import annotations

from typing import Any

from repro.util.env import engine as engine_choice

__all__ = ["resolve_engine"]


def resolve_engine(explicit: str | None, sanitizer: Any) -> str:
    """The engine name for one run.

    ``explicit`` is the ``Machine(engine=)`` constructor override (None =
    defer to ``REPRO_ENGINE``).  A sanitized run always uses the thread
    engine: the race detector's happens-before model instruments real
    concurrency, which the cooperative scheduler deliberately removes.
    """
    if sanitizer is not None:
        return "thread"
    return explicit if explicit is not None else engine_choice()
