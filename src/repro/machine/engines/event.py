"""The deterministic cooperative event engine (default).

Exactly one rank executes at any instant.  Every rank program runs on a
*carrier* — an OS thread used purely as a suspendable call stack, never as
a source of concurrency: the scheduler holds a single baton, hands it to
one carrier at a time, and a carrier gives it back whenever its rank
blocks (recv with no matching message, gate with missing participants) or
explicitly yields (failure-detector reads).  Between two handoffs no other
rank can run, so every check-then-park in :mod:`repro.machine.comm` is
atomic by construction and the whole schedule is a deterministic function
of the program — no seeds, no wall clock, no OS scheduler influence.

Scheduling contract (docs/MACHINE.md "Engines"):

- The ready queue is FIFO, seeded with ranks ``0..P-1`` in order.
- A send wakes the destination iff it is parked on a matching
  ``(source, tag)`` receive; gate arrivals wake exactly the waiters whose
  pending set they empty; death/finish/abort wake every waiter (in
  ascending rank order) so fail-over re-checks run promptly.
- A woken waiter *re-checks* its condition and re-parks if it is still
  unsatisfied (wake-and-recheck, never wake-and-assume).

Hang detection is **virtual-time quiescence**, not wall clock: when the
ready queue is empty but waiters remain, no rank can ever run again, so
the machine is deadlocked *now* regardless of any timeout value.  The
waiter with the smallest ``(timeout, rank)`` key is resumed with a
``deadlock`` verdict and raises the same :class:`DeadlockError` the
thread engine's watchdog would have produced — per-receive timeouts
survive as deterministic priorities, not as durations.  The one wall
clock left is a host-level backstop for a rank that never returns
control at all (an infinite loop between yield points), bounded by the
same ``join_grace`` the thread engine uses.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.machine.errors import MachineError
from repro.util.env import join_grace

if TYPE_CHECKING:
    from repro.machine.comm import _SharedState
    from repro.machine.network import Message

__all__ = ["EventEngine"]

#: Stack reservation per carrier thread.  Rank programs are ordinary
#: Python functions whose frames live on the heap; 512 KiB of C stack is
#: ample for the interpreter and keeps 4096 carriers near 2 GiB of
#: *virtual* address space (resident usage stays in the tens of MiB).
_CARRIER_STACK_BYTES = 512 * 1024


class _Wait:
    """Why a parked rank is parked, and how urgently to sacrifice it.

    ``limit`` is the receive/gate timeout the caller passed — under
    virtual time it is a quiescence *priority* (smaller gives up first,
    matching which watchdog would have fired first on the wall clock),
    never a duration.  ``queued`` latches once the rank has been appended
    to the ready queue so multiple wake sources cannot double-enqueue it;
    ``verdict`` tells the woken fiber whether to re-check (True) or to
    raise its deadlock error (False).
    """

    RECV = "recv"
    GATE = "gate"

    __slots__ = ("kind", "source", "tag", "key", "pending", "limit", "queued", "verdict")

    def __init__(
        self,
        kind: str,
        *,
        source: int = -1,
        tag: int = 0,
        key: Any = None,
        pending: set[int] | None = None,
        limit: float = 0.0,
    ):
        self.kind = kind
        self.source = source
        self.tag = tag
        self.key = key
        #: Gate waits only: participants not yet arrived-or-dead at park
        #: time.  Maintained incrementally by arrival hooks so a P-wide
        #: gate costs O(P) total, not O(P^2) re-scans.
        self.pending = pending if pending is not None else set()
        self.limit = limit
        self.queued = False
        self.verdict = True


class EventEngine:
    """Cooperative scheduler over carrier threads (one runnable rank)."""

    name = "event"

    def __init__(self, state: "_SharedState"):
        self._state = state
        size = state.size
        #: FIFO of runnable ranks.  Only the running fiber or the
        #: scheduler mutates it, and never both at once (single baton),
        #: so no lock is needed.
        self._ready: deque[int] = deque()
        self._waits: dict[int, _Wait] = {}
        #: Gate key -> ranks parked on that gate (wake index).
        self._gate_waiters: dict[Any, set[int]] = {}
        self._batons = [threading.Event() for _ in range(size)]
        self._resume = threading.Event()
        self._done = [False] * size

    # -- run loop (machine's thread) ---------------------------------------

    def execute(self, runner: Callable[[int], None]) -> None:
        state = self._state
        size = state.size
        state.scheduler = self
        previous_stack: int | None
        try:
            previous_stack = threading.stack_size(_CARRIER_STACK_BYTES)
        except (ValueError, RuntimeError, OverflowError):
            previous_stack = None
        try:
            carriers = [
                threading.Thread(
                    target=self._carrier,
                    args=(r, runner),
                    name=f"rank-{r}",
                    daemon=True,
                )
                for r in range(size)
            ]
        finally:
            if previous_stack is not None:
                threading.stack_size(previous_stack)
        for t in carriers:
            t.start()
        grace = join_grace(state.timeout)
        self._ready.extend(range(size))
        try:
            while True:
                if self._ready:
                    rank = self._ready.popleft()
                    if self._done[rank]:
                        continue
                    wait = self._waits.pop(rank, None)
                    if wait is not None and wait.kind == _Wait.GATE:
                        waiters = self._gate_waiters.get(wait.key)
                        if waiters is not None:
                            waiters.discard(rank)
                            if not waiters:
                                del self._gate_waiters[wait.key]
                    self._resume.clear()
                    self._batons[rank].set()
                    if not self._resume.wait(timeout=grace):
                        # The fiber never came back: it is looping without
                        # touching a yield point.  Same surface as the
                        # thread engine's join watchdog.
                        raise MachineError(
                            f"rank-{rank} failed to terminate (deadlock?)"
                        )
                elif self._waits:
                    # Virtual-time quiescence: nothing is runnable and
                    # nothing in flight, so these waits can never be
                    # satisfied.  Sacrifice the most impatient waiter;
                    # its failure cascades deterministically (peers see
                    # its finished/alive flags and fail over in turn).
                    victim = min(
                        self._waits, key=lambda r: (self._waits[r].limit, r)
                    )
                    wait = self._waits[victim]
                    wait.verdict = False
                    self._enqueue(victim, wait)
                else:
                    break
        finally:
            state.scheduler = None
        for t in carriers:
            t.join(timeout=grace)
            if t.is_alive():
                raise MachineError(f"{t.name} failed to terminate (deadlock?)")

    def _carrier(self, rank: int, runner: Callable[[int], None]) -> None:
        self._batons[rank].wait()
        try:
            runner(rank)
        finally:
            # ``runner`` has already published the rank's finished/alive
            # flags (its own finally), so waiters re-checking now observe
            # them: wake everyone, then hand the baton home for good.
            self._done[rank] = True
            self.on_liveness_change()
            self._resume.set()

    # -- fiber-side blocking (called on the running fiber only) ------------

    def block_recv(self, rank: int, source: int, tag: int, limit: float) -> bool:
        """Park until a matching message *may* be available.

        Returns True to re-check (a wake fired) or False when this rank
        was picked as the quiescence victim and must raise its
        :class:`DeadlockError`.
        """
        return self._block(
            rank, _Wait(_Wait.RECV, source=source, tag=tag, limit=limit)
        )

    def block_gate(
        self, rank: int, key: Any, pending: set[int], limit: float
    ) -> bool:
        """Park until the gate's pending set *may* have emptied."""
        wait = _Wait(_Wait.GATE, key=key, pending=pending, limit=limit)
        self._gate_waiters.setdefault(key, set()).add(rank)
        return self._block(rank, wait)

    def yield_turn(self, rank: int) -> None:
        """Hand the baton around the ready queue once (detector reads).

        Keeps busy-poll loops over ``is_alive``/``poll_votes`` live: the
        polling rank goes to the back of the queue so the ranks it is
        watching get to run and change the observed state.
        """
        self._ready.append(rank)
        self._handoff(rank)

    def _block(self, rank: int, wait: _Wait) -> bool:
        self._waits[rank] = wait
        self._handoff(rank)
        return wait.verdict

    def _handoff(self, rank: int) -> None:
        baton = self._batons[rank]
        # Clear our own baton *before* releasing the scheduler: a wake can
        # only be issued by code the scheduler runs after this point, so
        # set-then-wait can never race ahead of the clear.
        baton.clear()
        self._resume.set()
        baton.wait()

    # -- wake hooks (called on the running fiber only) ---------------------

    def on_post(self, msg: "Message") -> None:
        """A message was posted: wake its destination iff it is parked on
        exactly this ``(source, tag)`` match."""
        wait = self._waits.get(msg.dest)
        if (
            wait is not None
            and not wait.queued
            and wait.kind == _Wait.RECV
            and wait.source == msg.source
            and wait.tag == msg.tag
        ):
            self._enqueue(msg.dest, wait)

    def on_gate_arrival(self, key: Any, arriver: int) -> None:
        """``arriver`` registered at ``key``: strike it from every parked
        waiter's pending set, waking those that become complete."""
        waiters = self._gate_waiters.get(key)
        if not waiters:
            return
        for rank in sorted(waiters):
            wait = self._waits[rank]
            wait.pending.discard(arriver)
            if not wait.pending and not wait.queued:
                self._enqueue(rank, wait)

    def on_liveness_change(self) -> None:
        """A rank died, finished, aborted or was replaced: every kind of
        wait can now fail over, so wake all waiters (ascending rank) to
        re-check."""
        for rank in sorted(self._waits):
            wait = self._waits[rank]
            if not wait.queued:
                self._enqueue(rank, wait)

    def _enqueue(self, rank: int, wait: _Wait) -> None:
        wait.queued = True
        self._ready.append(rank)
