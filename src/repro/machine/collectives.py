"""Collective communication operations (paper Section 2.4).

Two families live here:

**Counted collectives** (``broadcast``, ``reduce``, ``allreduce``,
``gather``, ``allgather``, ``scatter``, ``alltoall``, ``barrier``) are real
message-passing algorithms (binomial trees / direct exchanges) whose costs
are *measured* — every message goes through the charged ``send``/``recv``
path.  The parallel Toom-Cook algorithm only ever applies these within
processor-grid **rows** of ``2k-1`` ranks (a constant), where a binomial
tree is already bandwidth-optimal up to constants.

**Modeled collectives** (``t_reduce``, ``t_broadcast``) implement the
simultaneous-reduction primitive of Lemma 2.5 / Corollary 2.6 (Sanders &
Sibeyn 2003; Birnbaum & Schwartz 2018):

    t simultaneous reduces of W words over P processors cost
    ``F = t*W``, ``BW = t*W``, ``L = O(log P + t)``.

Fully pipelining Sanders-Sibeyn trees in a thread simulator would obscure
the algorithms under test, so these two primitives move the data directly
(uncharged transport) and *charge the proven costs explicitly* — exactly as
the paper takes Lemma 2.5 as given.  The charging is verified against the
lemma's formulas in the collective benchmarks, and callers can pass
``modeled=False`` to fall back to counted binomial-tree loops instead.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from repro.machine.errors import CommError
from repro.machine.sizes import payload_words
from repro.machine.tags import (
    TAG_ALLGATHER,
    TAG_ALLREDUCE,
    TAG_ALLTOALL,
    TAG_BARRIER,
    TAG_BROADCAST,
    TAG_GATHER,
    TAG_REDUCE,
    TAG_SCATTER,
    TAG_T_BROADCAST,
    TAG_T_REDUCE,
)

__all__ = [
    "broadcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "barrier",
    "t_reduce",
    "t_broadcast",
]

_ADD: Callable[[Any, Any], Any] = lambda a, b: a + b


def _base_comm(comm: Any) -> Any:
    """The root Communicator under any stack of sub-communicators."""
    base = comm
    while hasattr(base, "parent"):
        base = base.parent
    return base


def _trace_collective(
    comm: Any, op: str, fan_in: int, payload: Any = None, words: int = 0,
    modeled: bool = False,
) -> None:
    """Record a collective marker event (no-op when tracing is off).

    ``fan_in`` > 0 marks the aggregating end of the tree (root of a
    reduce/gather, every rank of an all-to-all); contributing leaves pass
    0 so the fan-in histogram isn't inflated by group size.  Payload
    sizing is deferred behind the enabled check.
    """
    base = _base_comm(comm)
    tracer = base._state.tracer
    if not tracer.enabled:
        return
    if payload is not None:
        words = payload_words(payload, comm.word_bits)
    tracer.on_collective(
        base.rank,
        base.current_phase,
        base.clock.snapshot(),
        base.incarnation,
        op=op,
        group_size=comm.size,
        fan_in=fan_in,
        words=words,
        modeled=modeled,
    )


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _prank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def broadcast(comm: Any, value: Any, root: int = 0, tag: int = TAG_BROADCAST) -> Any:
    """Binomial-tree broadcast; returns the value at every rank."""
    size = comm.size
    if not (0 <= root < size):
        raise CommError(f"broadcast root {root} out of range")
    if size == 1:
        return value
    if comm.rank == root:
        _trace_collective(comm, "broadcast", fan_in=size - 1, payload=value)
    me = _vrank(comm.rank, root, size)
    # MPICH-style binomial tree: receive once from the parent (the rank
    # differing in my lowest set bit), then forward down remaining bits.
    mask = 1
    while mask < size:
        if me & mask:
            value = comm.recv(_prank(me ^ mask, root, size), tag=tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child = me | mask
        if child != me and child < size:
            comm.send(_prank(child, root, size), value, tag=tag)
        mask >>= 1
    return value


def reduce(
    comm: Any,
    value: Any,
    op: Callable[[Any, Any], Any] = _ADD,
    root: int = 0,
    tag: int = TAG_REDUCE,
) -> Any:
    """Binomial-tree reduction; the result is returned at ``root``
    (other ranks get ``None``)."""
    size = comm.size
    if not (0 <= root < size):
        raise CommError(f"reduce root {root} out of range")
    if comm.rank == root and size > 1:
        _trace_collective(comm, "reduce", fan_in=size - 1, payload=value)
    me = _vrank(comm.rank, root, size)
    acc = value
    mask = 1
    while mask < size:
        if me & mask:
            comm.send(_prank(me ^ mask, root, size), acc, tag=tag)
            return None
        partner = me | mask
        if partner < size:
            acc = op(acc, comm.recv(_prank(partner, root, size), tag=tag))
        mask <<= 1
    return acc


def allreduce(
    comm: Any, value: Any, op: Callable[[Any, Any], Any] = _ADD, tag: int = TAG_ALLREDUCE
) -> Any:
    """Reduce-to-0 then broadcast (every rank gets the result)."""
    acc = reduce(comm, value, op=op, root=0, tag=tag)
    return broadcast(comm, acc, root=0, tag=tag + 1)


def gather(comm: Any, value: Any, root: int = 0, tag: int = TAG_GATHER) -> list | None:
    """Gather one value per rank at ``root`` (group order)."""
    size = comm.size
    if not (0 <= root < size):
        raise CommError(f"gather root {root} out of range")
    if comm.rank == root:
        if size > 1:
            _trace_collective(comm, "gather", fan_in=size - 1, payload=value)
        out: list[Any] = [None] * size
        out[root] = value
        for r in range(size):
            if r != root:
                out[r] = comm.recv(r, tag=tag)
        return out
    comm.send(root, value, tag=tag)
    return None


def allgather(comm: Any, value: Any, tag: int = TAG_ALLGATHER) -> list:
    """Gather at 0, broadcast the list (ring/doubling costs don't matter
    for the constant-size groups this project uses)."""
    collected = gather(comm, value, root=0, tag=tag)
    return broadcast(comm, collected, root=0, tag=tag + 1)


def scatter(
    comm: Any, values: Sequence[Any] | None, root: int = 0, tag: int = TAG_SCATTER
) -> Any:
    """Scatter ``values[i]`` to rank ``i`` from ``root``."""
    size = comm.size
    if not (0 <= root < size):
        raise CommError(f"scatter root {root} out of range")
    if comm.rank == root:
        if values is None or len(values) != size:
            raise CommError(f"scatter requires exactly {size} values at root")
        if size > 1:
            _trace_collective(comm, "scatter", fan_in=size - 1, payload=values)
        for r in range(size):
            if r != root:
                comm.send(r, values[r], tag=tag)
        return values[root]
    return comm.recv(root, tag=tag)


def alltoall(comm: Any, send_blocks: Sequence[Any], tag: int = TAG_ALLTOALL) -> list:
    """Direct-exchange all-to-all: rank ``i`` receives ``send_blocks[i]``
    from every rank.  Cost per rank: ``size-1`` messages each way."""
    size = comm.size
    if len(send_blocks) != size:
        raise CommError(f"alltoall requires exactly {size} blocks")
    if size > 1:
        _trace_collective(comm, "alltoall", fan_in=size - 1, payload=send_blocks)
    out: list[Any] = [None] * size
    out[comm.rank] = send_blocks[comm.rank]
    # Rotated schedule avoids everyone hammering rank 0 first.
    for shift in range(1, size):
        dest = (comm.rank + shift) % size
        src = (comm.rank - shift) % size
        comm.send(dest, send_blocks[dest], tag=tag)
        out[src] = comm.recv(src, tag=tag)
    return out


def barrier(comm: Any, tag: int = TAG_BARRIER) -> None:
    """Dissemination barrier (log-round synchronization)."""
    size = comm.size
    rounds = max(1, math.ceil(math.log2(size))) if size > 1 else 0
    if rounds and comm.rank == 0:
        _trace_collective(comm, "barrier", fan_in=size - 1)
    for r in range(rounds):
        dist = 1 << r
        comm.send((comm.rank + dist) % size, None, tag=tag + r)
        comm.recv((comm.rank - dist) % size, tag=tag + r)


# ---------------------------------------------------------------------------
# Modeled t-reduce / t-broadcast (Lemma 2.5, Corollary 2.6)
# ---------------------------------------------------------------------------


def _charge_lemma25(
    comm: Any, t: int, total_words: int, with_flops: bool, name: str = "lemma25"
) -> None:
    """Charge one rank the Lemma 2.5 critical-path costs."""
    logp = max(1, math.ceil(math.log2(max(2, comm.size))))
    comm.clock.charge_flops(total_words if with_flops else 0)
    comm.clock.bw += total_words
    comm.clock.l += logp + t
    comm.ledger.charge(
        f=total_words if with_flops else 0, bw=total_words, l=logp + t
    )
    base = _base_comm(comm)
    recorder = base._state.recorder
    if recorder is not None:
        group = (
            list(comm.ranks)
            if hasattr(comm, "ranks")
            else list(range(comm.size))
        )
        recorder.on_collective(
            base.rank, base.current_phase, name, group,
            total_words, logp + t, base.incarnation,
        )


def _uncharged_send(comm: Any, dest: int, payload: Any, tag: int) -> None:
    """Transport without cost charging (modeled collectives pay in bulk).

    Clock propagation still happens on the receive side, so critical-path
    dependencies survive.
    """
    # Reach through sub-communicators to the root Communicator.
    base, gdest = comm, dest
    while hasattr(base, "parent"):
        gdest = base.ranks[gdest]
        base = base.parent
    base.fault_point()
    from repro.machine.network import Message

    recorder = base._state.recorder
    if recorder is not None:
        recorder.on_send(
            base.rank, base.current_phase, gdest, tag, 0, 0,
            base.incarnation, modeled=True,
        )
    msg = Message(
        source=base.rank,
        dest=gdest,
        tag=tag,
        payload=payload,
        words=0,
        clock=base.clock.snapshot(),
        incarnation=base.incarnation,
    )
    base._state.router.post(msg)
    scheduler = base._state.scheduler
    if scheduler is not None:
        scheduler.on_post(msg)


def _uncharged_recv(comm: Any, source: int, tag: int) -> Any:
    from repro.machine.errors import DeadlockError, PeerDead

    base, gsource = comm, source
    while hasattr(base, "parent"):
        gsource = base.ranks[gsource]
        base = base.parent
    from repro.util.env import poll_interval

    base.fault_point()
    state = base._state
    scheduler = state.scheduler
    if scheduler is not None:
        # Event engine: park instead of polling; the dead-source check
        # deliberately mirrors the thread path below (liveness only — a
        # finished-but-alive source is a deadlock, not a fail-over).
        while True:
            try:
                msg = state.router.collect(base.rank, gsource, tag, timeout=0.0)
                break
            except DeadlockError:
                with state.lock:
                    source_dead = not state.alive[gsource]
                if source_dead:
                    raise PeerDead(gsource) from None
                if not scheduler.block_recv(
                    base.rank, gsource, tag, state.timeout
                ):
                    raise
    else:
        waited = 0.0
        interval = poll_interval()
        while True:
            try:
                msg = state.router.collect(base.rank, gsource, tag, timeout=interval)
                break
            except DeadlockError:
                waited += interval
                with state.lock:
                    source_dead = not state.alive[gsource]
                if source_dead:
                    raise PeerDead(gsource) from None
                if waited >= state.timeout:
                    raise
    recorder = state.recorder
    if recorder is not None:
        recorder.on_recv(
            base.rank, base.current_phase, msg.source, msg.tag, msg.words, 0,
            base.incarnation, modeled=True,
        )
    base.clock.merge(msg.clock)
    return msg.payload


def t_reduce(
    comm: Any,
    contributions: dict[int, Any],
    op: Callable[[Any, Any], Any] = _ADD,
    tag: int = TAG_T_REDUCE,
    modeled: bool = True,
) -> Any:
    """``t`` simultaneous reductions (Lemma 2.5).

    ``contributions`` maps *root rank* → this rank's contribution to the
    reduction rooted there.  Every participating rank must pass the same
    set of roots.  Returns the reduced value at each root (``None``
    elsewhere for non-roots).

    Costs charged per rank (modeled, per Lemma 2.5): ``F = t*W``,
    ``BW = t*W``, ``L = O(log P + t)`` where ``W`` is this rank's total
    contribution size.  With ``modeled=False`` runs ``t`` counted
    binomial-tree reductions instead.
    """
    roots = sorted(contributions)
    t = len(roots)
    if t == 0:
        return None
    if not modeled:
        result = None
        for i, root in enumerate(roots):
            r = reduce(comm, contributions[root], op=op, root=root, tag=tag + 3 * i)
            if comm.rank == root:
                result = r
        return result

    from repro.machine.errors import PeerDead

    total_words = sum(
        payload_words(contributions[r], comm.word_bits) for r in roots
    )
    _charge_lemma25(comm, t, total_words, with_flops=True, name="t_reduce")
    _trace_collective(
        comm,
        "t_reduce",
        fan_in=(comm.size - 1) if comm.rank in roots else 0,
        words=total_words,
        modeled=True,
    )
    result = None
    for i, root in enumerate(roots):
        mytag = tag + 3 * i
        if comm.rank == root:
            acc = contributions[root]
            for r in range(comm.size):
                if r != root:
                    try:
                        acc = op(acc, _uncharged_recv(comm, r, mytag))
                    except PeerDead:
                        # Dead contributors are skipped; callers whose
                        # semantics need every summand must exclude dead
                        # ranks from the group themselves.
                        continue
            result = acc
        else:
            _uncharged_send(comm, root, contributions[root], mytag)
    return result


def t_broadcast(
    comm: Any,
    values: dict[int, Any],
    tag: int = TAG_T_BROADCAST,
    modeled: bool = True,
) -> dict[int, Any]:
    """``t`` simultaneous broadcasts (Corollary 2.6).

    ``values`` maps *root rank* → the value to broadcast (meaningful at the
    root; other ranks pass ``None`` placeholders for the same keys).
    Returns root → received value at every rank.

    Costs (modeled): ``F = 0``, ``BW = t*W``, ``L = O(log P)``.
    """
    roots = sorted(values)
    t = len(roots)
    if t == 0:
        return {}
    if not modeled:
        return {
            root: broadcast(comm, values[root], root=root, tag=tag + 2 * i)
            for i, root in enumerate(roots)
        }

    out: dict[int, Any] = {}
    total_words = 0
    for i, root in enumerate(roots):
        mytag = tag + 2 * i
        if comm.rank == root:
            total_words += payload_words(values[root], comm.word_bits)
            for r in range(comm.size):
                if r != root:
                    _uncharged_send(comm, r, values[root], mytag)
            out[root] = values[root]
        else:
            out[root] = _uncharged_recv(comm, root, mytag)
            total_words += payload_words(out[root], comm.word_bits)
    _charge_lemma25(comm, 0, total_words, with_flops=False, name="t_broadcast")
    _trace_collective(
        comm,
        "t_broadcast",
        fan_in=(comm.size - 1) if comm.rank in roots else 0,
        words=total_words,
        modeled=True,
    )
    return out
