"""Registry of named message-tag constants (single source of truth).

Every tag used on the simulated machine is derived from one of the base
constants below, so a reader (or the ``commcheck`` analyzer) can map any
wire tag back to the protocol family that produced it.  Lint rule
``COMM002`` enforces that ``core/`` and ``machine/collectives.py`` call
sites reference these names instead of bare integer literals.

Tag-space layout
----------------
Families occupy disjoint bands; derived tags add small offsets within
the band (per-round, per-root, per-epoch, per-task scope...):

* ``100 .. 119`` — counted collectives (:mod:`repro.machine.collectives`):
  one base per collective, ``barrier`` consumes one tag per round.
* ``120 .. 139`` — :func:`~repro.machine.collectives.t_reduce`
  (``base + 3 * root_index``).
* ``140 .. 159`` — :func:`~repro.machine.collectives.t_broadcast`
  (``base + 2 * root_index``).
* ``5000 .. 5999`` — linear column code (:mod:`repro.core.ft_linear`):
  state encode / recovery / metadata, offset by ``16 * (epoch % 32)``
  and ``2 * dead_position``.
* ``100_000 .. 299_999`` — BFS/DFS traversal exchanges
  (:mod:`repro.core.parallel_toomcook`): ``base + step + 64 * scope``.
* ``300_000 .. 399_999`` — boundary resends to replacement processors
  (:mod:`repro.core.ft_toomcook`), same derivation as the traversal.
* ``400_000 .. 419_999`` — checkpoint shipping / restore
  (:mod:`repro.core.checkpoint`), restore offset by attempt number.
"""

from __future__ import annotations

__all__ = [
    "TAG_BROADCAST",
    "TAG_REDUCE",
    "TAG_ALLREDUCE",
    "TAG_GATHER",
    "TAG_ALLGATHER",
    "TAG_SCATTER",
    "TAG_ALLTOALL",
    "TAG_BARRIER",
    "TAG_T_REDUCE",
    "TAG_T_BROADCAST",
    "TAG_ENCODE",
    "TAG_RECOVER",
    "TAG_STATE_META",
    "TAG_BFS_DOWN",
    "TAG_BFS_UP",
    "TAG_RESEND",
    "TAG_CKPT",
    "TAG_CKPT_RESTORE",
    "TAG_BACKEND_DEMO",
    "TAG_FAMILIES",
    "tag_family",
]

# -- counted collectives (machine/collectives.py) ---------------------------
TAG_BROADCAST = 100
TAG_REDUCE = 101
TAG_ALLREDUCE = 102  # reduce stage; broadcast stage uses TAG_ALLREDUCE + 1
TAG_GATHER = 103
TAG_ALLGATHER = 104  # gather stage; broadcast stage uses TAG_ALLGATHER + 1
TAG_SCATTER = 105
TAG_ALLTOALL = 106
TAG_BARRIER = 107  # round r of the dissemination barrier uses TAG_BARRIER + r

# -- Lemma 2.5 collectives --------------------------------------------------
TAG_T_REDUCE = 120  # root i's transport uses TAG_T_REDUCE + 3 * i
TAG_T_BROADCAST = 140  # root i's transport uses TAG_T_BROADCAST + 2 * i

# -- linear column code (core/ft_linear.py) ---------------------------------
TAG_ENCODE = 5000  # + 16 * (epoch % 32)
TAG_RECOVER = 5600  # + 16 * (epoch % 32) + 2 * dead_position
TAG_STATE_META = 5900

# -- BFS/DFS traversal (core/parallel_toomcook.py) --------------------------
TAG_BFS_DOWN = 100_000  # + step + 64 * task_scope
TAG_BFS_UP = 200_000  # + step + 64 * task_scope

# -- boundary resends (core/ft_toomcook.py) ---------------------------------
TAG_RESEND = 300_000  # + step + 64 * task_scope

# -- checkpointing (core/checkpoint.py) -------------------------------------
TAG_CKPT = 400_000
TAG_CKPT_RESTORE = 410_000  # + restart attempt

# -- process-backend demo program (machine/backends/demo.py) ----------------
TAG_BACKEND_DEMO = 420_000  # + worker rank


#: Family name -> half-open band ``[lo, hi)`` of the wire-tag space.  Used
#: by :func:`tag_family` and by the ``commcheck`` reports to label edges.
TAG_FAMILIES: dict[str, tuple[int, int]] = {
    "broadcast": (TAG_BROADCAST, TAG_REDUCE),
    "reduce": (TAG_REDUCE, TAG_ALLREDUCE),
    "allreduce": (TAG_ALLREDUCE, TAG_GATHER),
    "gather": (TAG_GATHER, TAG_ALLGATHER),
    "allgather": (TAG_ALLGATHER, TAG_SCATTER),
    "scatter": (TAG_SCATTER, TAG_ALLTOALL),
    "alltoall": (TAG_ALLTOALL, TAG_BARRIER),
    "barrier": (TAG_BARRIER, TAG_T_REDUCE),
    "t_reduce": (TAG_T_REDUCE, TAG_T_BROADCAST),
    "t_broadcast": (TAG_T_BROADCAST, 160),
    "encode": (TAG_ENCODE, TAG_RECOVER),
    "recover": (TAG_RECOVER, TAG_STATE_META),
    "state_meta": (TAG_STATE_META, 6000),
    "bfs_down": (TAG_BFS_DOWN, TAG_BFS_UP),
    "bfs_up": (TAG_BFS_UP, TAG_RESEND),
    "resend": (TAG_RESEND, TAG_CKPT),
    "ckpt": (TAG_CKPT, TAG_CKPT_RESTORE),
    "ckpt_restore": (TAG_CKPT_RESTORE, TAG_BACKEND_DEMO),
    "backend_demo": (TAG_BACKEND_DEMO, 421_000),
}


def tag_family(tag: int) -> str:
    """Name of the tag family whose band contains ``tag``.

    Returns ``"untagged"`` for the default tag 0 and ``"unknown"`` for
    anything outside every registered band — ``commcheck`` surfaces the
    latter, and ``COMM002`` keeps new bands flowing through this module.
    """
    if tag == 0:
        return "untagged"
    for name, (lo, hi) in TAG_FAMILIES.items():
        if lo <= tag < hi:
            return name
    return "unknown"
