"""The process-backend coordinator.

:class:`ProcBackend` realizes one :meth:`Machine.run
<repro.machine.engine.Machine.run>` by spawning one OS process per rank
(through :func:`repro.parallel.spawn_process`), relaying their messages
over localhost sockets, and assembling the same
:class:`~repro.machine.engine.RunResult` the simulator would return.

Responsibilities, in the order they matter:

- **Relay**: every ``DATA`` frame from rank *i* is forwarded to rank
  *j*'s socket under a per-destination write lock.  TCP FIFO per socket
  plus one reader thread per source gives the same per-channel ordering
  guarantee the simulator's router provides.
- **Consistency**: votes, gates, failure agreement, incarnations and
  liveness live here; ranks reach them via ``CONTROL`` round-trips, so
  "first caller snapshots the detector" means first *frame processed*,
  a total order, exactly like the simulator's lock.
- **Watchdog**: a rank is declared dead on socket EOF or process exit
  (authoritative) or after ``20 * REPRO_HEARTBEAT * REPRO_TIMEOUT_SCALE``
  of silence (wedged — it is then killed so EOF follows).  Death is
  broadcast as an ``EVENT``, which is what feeds peers'
  ``PeerDead``/``agree_dead``/replacement machinery.
- **Fault injection**: with ``REPRO_PROC_FAULTS=kill|respawn``, a rank
  hitting a scheduled hard fault ships its census and asks to be killed;
  the coordinator ``SIGKILL``\\ s it mid-phase — a *real* crash — and in
  ``respawn`` mode starts a replacement process at the next incarnation.
- **Teardown**: every spawn is registered in a module-level table;
  :meth:`ProcBackend.run` reaps all of it in a ``finally`` (including on
  ``KeyboardInterrupt``), and children exit on their own when the
  coordinator's socket goes away, so no path leaks an orphan.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import signal
import socket
import threading
import time
from typing import Any

from repro.machine.backends import wire
from repro.machine.backends.rankproc import RankConfig, rank_main
from repro.machine.costs import Counts, PhaseLedger
from repro.machine.engine import (
    RunResult,
    merge_phase_costs,
    raise_run_errors,
)
from repro.machine.errors import HardFault, MachineError
from repro.machine.fault import FaultLog
from repro.parallel import spawn_process
from repro.util.env import (
    heartbeat_interval,
    join_grace,
    poll_interval,
    proc_fault_mode,
    timeout_scale,
)

__all__ = ["ProcBackend", "live_children"]

#: Every child this module ever spawned and has not yet reaped.  The CI
#: backend-conformance job (and the teardown tests) assert this is empty
#: of live processes after a suite — the "no leaked orphans" gate.
_CHILDREN: set[Any] = set()
_CHILDREN_LOCK = threading.Lock()


def live_children() -> list[Any]:
    """Spawned rank processes still alive (should be [] between runs)."""
    with _CHILDREN_LOCK:
        return [p for p in _CHILDREN if p.is_alive()]


def _close_quietly(sock: Any) -> None:
    """Best-effort close of a socket whose peer may already be gone.

    The only audited swallow for close paths: by the time teardown or the
    EOF pipeline runs, the interesting failure (the disconnect itself) has
    already been observed and accounted elsewhere.
    """
    try:
        sock.close()
    except OSError:  # repro-lint: disable=EXC001 -- audited: peer already gone, nothing left to report
        pass


def _kill_quietly(pid: int) -> None:
    """SIGKILL a rank process that may have already exited.

    Losing the race to a natural death is the desired outcome, not an
    error: either way the EOF pipeline converts the exit into a normal
    death event.
    """
    try:
        os.kill(pid, signal.SIGKILL)
    except (OSError, ProcessLookupError):  # repro-lint: disable=EXC001 -- audited: process already dead, which is the goal
        pass


class _RankSlot:
    """Coordinator-side bookkeeping for one rank (all incarnations)."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.proc: Any = None
        self.conn: socket.socket | None = None
        self.wlock = threading.Lock()
        self.last_seen = 0.0
        self.alive = True
        self.finished = False
        self.aborted = -1
        self.incarnation = 0
        self.censuses: list[dict[str, Any]] = []
        self.result: Any = None
        self.error: BaseException | None = None
        self.got_result = False
        self.kill_requested = False
        self.done = threading.Event()


class ProcBackend:
    """One-process-per-rank execution of a single machine run."""

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        self.fault_mode = proc_fault_mode()
        self.lock = threading.Lock()
        self.slots = [_RankSlot(r) for r in range(machine.size)]
        self.gates: dict[Any, set[int]] = {}  # guarded-by: lock
        self.votes: dict[Any, dict[int, bool]] = {}  # guarded-by: lock
        self.agreed_dead: dict[Any, frozenset] = {}  # guarded-by: lock
        self.listener: socket.socket | None = None
        self.port = 0
        self.configs: list[RankConfig] = []  # guarded-by: lock
        self._spawned: list[Any] = []  # guarded-by: lock
        self._connected = threading.Semaphore(0)
        self._closing = False

    # ------------------------------------------------------------------ run
    def run(
        self,
        program: Any,
        args: Any,
        rank_args: Any,
        raise_on_error: bool,
    ) -> RunResult:
        machine = self.machine
        if machine.tracer.enabled:
            raise MachineError(
                "tracing is not supported on the proc backend; "
                "run with backend='sim' to trace"
            )
        if machine._resolve_sanitizer() is not None:
            raise MachineError(
                "race detection is not supported on the proc backend; "
                "run with backend='sim' to sanitize"
            )
        configs = [
            self._config_for(r, program, args, rank_args)
            for r in range(machine.size)
        ]
        try:
            pickle.dumps(configs[0])
        except Exception as exc:
            raise MachineError(
                "the proc backend ships the rank program to worker "
                f"processes and requires it to be picklable: {exc}"
            ) from exc
        self.listener = wire.bind_listener(machine.size + 8)
        self.port = self.listener.getsockname()[1]
        for cfg in configs:
            cfg.port = self.port
        with self.lock:
            self.configs = configs
        try:
            threading.Thread(
                target=self._accept_loop, name="proc-accept", daemon=True
            ).start()
            for r in range(machine.size):
                self._spawn_rank(configs[r])
            self._await_connections()
            threading.Thread(
                target=self._monitor_loop, name="proc-monitor", daemon=True
            ).start()
            grace = join_grace(machine.timeout)
            for slot in self.slots:
                if not slot.done.wait(grace):
                    raise MachineError(
                        f"rank-{slot.rank} failed to terminate (deadlock?)"
                    )
        finally:
            self._teardown()
        return self._assemble(raise_on_error)

    def _config_for(
        self, rank: int, program: Any, args: Any, rank_args: Any
    ) -> RankConfig:
        machine = self.machine
        return RankConfig(
            rank=rank,
            size=machine.size,
            host="127.0.0.1",
            port=0,  # patched once the listener is bound
            word_bits=machine.word_bits,
            memory_words=machine.memory_words,
            timeout=machine.timeout,
            topology=machine.topology,
            fault_schedule=machine.fault_schedule,
            fault_mode=self.fault_mode,
            record=machine.recorder is not None,
            program=program,
            prog_args=tuple(rank_args[rank]) if rank_args is not None else tuple(args),
        )

    def _spawn_rank(self, config: RankConfig) -> None:
        slot = self.slots[config.rank]
        proc = spawn_process(
            rank_main,
            args=(config,),
            name=f"repro-rank-{config.rank}.{config.incarnation}",
        )
        with _CHILDREN_LOCK:
            _CHILDREN.add(proc)
        with self.lock:
            self._spawned.append(proc)
            slot.proc = proc
            slot.last_seen = time.monotonic()

    def _await_connections(self) -> None:
        deadline = time.monotonic() + join_grace(self.machine.timeout)
        for _ in range(self.machine.size):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._connected.acquire(timeout=remaining):
                missing = [
                    s.rank for s in self.slots if s.conn is None
                ]
                raise MachineError(
                    f"rank processes failed to start: no connection from "
                    f"ranks {missing}"
                )
        snapshot = self._snapshot()
        for slot in self.slots:
            self._send_to(slot, wire.GO, snapshot)

    # ----------------------------------------------------------- accept side
    def _accept_loop(self) -> None:
        listener = self.listener
        assert listener is not None
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed: teardown
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._reader, args=(conn,), daemon=True
            ).start()

    def _reader(self, conn: socket.socket) -> None:
        """Per-connection reader: HELLO first, then the frame loop."""
        slot: _RankSlot | None = None
        try:
            kind, payload = wire.recv_frame(conn)
            if kind != wire.HELLO:
                conn.close()
                return
            rank, incarnation = payload
            slot = self.slots[rank]
            respawn = False
            with self.lock:
                slot.conn = conn
                slot.last_seen = time.monotonic()
                if incarnation > 0:
                    # A replacement process coming up: it was spawned at
                    # this incarnation, make the machine state agree.
                    slot.incarnation = incarnation
                    slot.alive = True
                    respawn = True
            if respawn:
                # GO must be the first frame the replacement sees (its
                # handshake blocks on it); the snapshot already carries
                # the bumped incarnation, and the broadcast echo to the
                # new rank re-applies it idempotently.
                self._send_to(slot, wire.GO, self._snapshot())
                self._broadcast("replacement", rank, slot.incarnation)
            self._connected.release()
            while True:
                kind, payload = wire.recv_frame(conn)
                slot.last_seen = time.monotonic()
                if kind == wire.DATA:
                    self._forward(payload)
                elif kind == wire.CONTROL:
                    self._handle_control(slot, payload)
                elif kind == wire.HEARTBEAT:
                    pass  # last_seen updated above
                elif kind == wire.FAULT_REQ:
                    self._handle_fault_req(slot, payload)
                elif kind == wire.RESULT:
                    self._handle_result(slot, payload)
                elif kind == wire.FIN:
                    self._handle_fin(slot)
        except (EOFError, OSError):  # repro-lint: disable=EXC001 -- audited: disconnect; the finally block routes it to _on_disconnect
            pass
        except wire.WireError as exc:
            # A malformed frame is a protocol violation, not a clean
            # death — surface it on the slot so the run fails loudly.
            # Exception: a rank we just SIGKILLed (live fault injection)
            # legitimately dies mid-frame; that stays an expected
            # disconnect and keeps its HardFault accounting.
            if slot is not None:
                with self.lock:
                    if (
                        not slot.kill_requested
                        and not self._closing
                        and slot.error is None
                    ):
                        slot.error = MachineError(
                            f"wire protocol violation on rank "
                            f"{slot.rank}'s connection: {exc}"
                        )
        finally:
            if slot is not None:
                self._on_disconnect(slot)
            else:
                _close_quietly(conn)

    # -------------------------------------------------------------- relaying
    def _send_to(self, slot: _RankSlot, kind: str, payload: Any) -> None:
        """Write a frame to one rank, dropping on any failure.

        Sends to dead/exited ranks succeed silently, matching the
        simulator (and physical reality): the sender cannot know.
        """
        with slot.wlock:
            conn = slot.conn
            if conn is None:
                return
            try:
                wire.send_frame(conn, kind, payload)
            except OSError:  # repro-lint: disable=EXC001 -- audited: send-to-dead-rank succeeds silently by contract (see docstring)
                pass

    def _forward(self, msg: Any) -> None:
        self._send_to(self.slots[msg.dest], wire.DELIVER, msg)

    def _broadcast(self, op: str, rank: int, value: Any = None) -> None:
        for slot in self.slots:
            self._send_to(slot, wire.EVENT, (op, rank, value))

    def _snapshot(self) -> dict[str, Any]:
        with self.lock:
            return {
                "alive": [s.alive for s in self.slots],
                "finished": [s.finished for s in self.slots],
                "aborted": [s.aborted for s in self.slots],
                "incarnations": [s.incarnation for s in self.slots],
            }

    # -------------------------------------------------------------- controls
    def _handle_control(self, slot: _RankSlot, payload: tuple) -> None:
        seq, op, args = payload
        value = self._control(slot, op, args)
        self._send_to(slot, wire.CONTROL_REPLY, (seq, value))

    def _control(self, slot: _RankSlot, op: str, args: tuple) -> Any:
        if op == "vote":
            key, rank, value = args
            with self.lock:
                self.votes.setdefault(key, {})[rank] = value
            return None
        if op == "poll_votes":
            (key,) = args
            with self.lock:
                return dict(self.votes.get(key, {}))
        if op == "gate_arrive":
            key, rank = args
            with self.lock:
                self.gates.setdefault(key, set()).add(rank)
            return None
        if op == "gate_poll":
            key, participants = args
            with self.lock:
                arrived = self.gates.get(key, set())
                return all(
                    (p in arrived) or not self.slots[p].alive
                    for p in participants
                )
        if op == "agree_dead":
            key, candidates = args
            with self.lock:
                if key not in self.agreed_dead:
                    self.agreed_dead[key] = frozenset(
                        r for r in candidates if not self.slots[r].alive
                    )
                return self.agreed_dead[key]
        if op == "die":
            (rank,) = args
            with self.lock:
                self.slots[rank].alive = False
            self._broadcast("dead", rank, self.slots[rank].incarnation)
            return None
        if op == "replacement":
            (rank,) = args
            with self.lock:
                target = self.slots[rank]
                target.incarnation += 1
                target.alive = True
                inc = target.incarnation
            self._broadcast("replacement", rank, inc)
            return inc
        if op == "abort":
            rank, task = args
            with self.lock:
                self.slots[rank].aborted = task
            self._broadcast("abort", rank, task)
            return None
        if op == "purge":
            (rank,) = args
            # The FIFO cut: the marker goes down the purging rank's own
            # socket *before* this control's reply (same write lock), so
            # the rank's receiver delivers everything forwarded so far,
            # purges, and only then unblocks the caller.
            self._send_to(self.slots[rank], wire.PURGE_DONE, None)
            return None
        raise MachineError(f"unknown control op {op!r} from rank {slot.rank}")

    # ------------------------------------------------------------ fault path
    def _handle_fault_req(self, slot: _RankSlot, census: dict) -> None:
        """A rank reached its scheduled fault point in live mode: kill it.

        The census shipped with the request preserves the victim's
        accounting (clock, ledger, recorder ops, fault log) — the only
        state the ``SIGKILL`` is allowed to destroy is the state the
        paper's fault model says a crash destroys.
        """
        with self.lock:
            slot.censuses.append(census)
            slot.kill_requested = True
            slot.alive = False
            proc = slot.proc
        self._broadcast("dead", slot.rank, slot.incarnation)
        if proc is not None and proc.pid is not None:
            _kill_quietly(proc.pid)

    def _handle_result(self, slot: _RankSlot, census: dict) -> None:
        with self.lock:
            slot.censuses.append(census)
            slot.result = census.get("result")
            slot.error = census.get("error")
            slot.got_result = True
            if slot.error is not None:
                slot.alive = False

    def _handle_fin(self, slot: _RankSlot) -> None:
        with self.lock:
            slot.finished = True
        self._broadcast("finished", slot.rank)
        slot.done.set()

    def _on_disconnect(self, slot: _RankSlot) -> None:
        """Socket EOF: clean exit after FIN, or a death to account for."""
        with self.lock:
            conn, slot.conn = slot.conn, None
            closing = self._closing
        if conn is not None:
            _close_quietly(conn)
        if slot.got_result or closing:
            slot.done.set()
            return
        respawn = False
        with self.lock:
            was_killed = slot.kill_requested
            slot.kill_requested = False
            slot.alive = False
            if was_killed and self.fault_mode == "respawn":
                respawn = True
                # The monitor must not mistake the killed incarnation's
                # corpse for a lost rank while the replacement spawns.
                slot.proc = None
            elif slot.error is None:
                if was_killed and slot.censuses:
                    census = slot.censuses[-1]
                    slot.error = HardFault(
                        slot.rank,
                        census.get("phase") or "init",
                        census.get("op_index") or 0,
                    )
                else:
                    slot.error = MachineError(
                        f"rank {slot.rank} terminated unexpectedly"
                    )
        if respawn:
            self._respawn(slot)
        else:
            self._broadcast("dead", slot.rank, slot.incarnation)
            slot.done.set()

    def _respawn(self, slot: _RankSlot) -> None:
        """Start the replacement process at the next incarnation.

        It runs the same rank program from the top — the paper's model:
        the replacement processor has none of the victim's data and
        must re-acquire its state through the protocol.
        """
        with self.lock:
            base = self.configs[slot.rank]
        config = dataclasses.replace(base, incarnation=slot.incarnation + 1)
        self._spawn_rank(config)

    # -------------------------------------------------------------- watchdog
    def _monitor_loop(self) -> None:
        silence_limit = 20.0 * heartbeat_interval() * timeout_scale()
        interval = max(poll_interval(), heartbeat_interval() / 2.0)
        while True:
            if self._closing:
                return
            time.sleep(interval)
            now = time.monotonic()
            for slot in self.slots:
                if slot.done.is_set():
                    continue
                with self.lock:
                    proc = slot.proc
                    conn = slot.conn
                    last = slot.last_seen
                if conn is not None and now - last > silence_limit:
                    # Wedged: no frames and no heartbeats.  Kill it so
                    # the EOF pipeline converts it into a normal death.
                    if proc is not None and proc.pid is not None:
                        _kill_quietly(proc.pid)
                elif conn is None and proc is not None and not proc.is_alive():
                    # Died before ever connecting (e.g. crash in spawn):
                    # no EOF will arrive, account for it here.
                    with self.lock:
                        slot.alive = False
                        if slot.error is None:
                            slot.error = MachineError(
                                f"rank {slot.rank} terminated unexpectedly"
                            )
                    self._broadcast("dead", slot.rank, slot.incarnation)
                    slot.done.set()

    # -------------------------------------------------------------- teardown
    def _teardown(self) -> None:
        """Reap everything; never leaks, including on KeyboardInterrupt."""
        with self.lock:
            self._closing = True
        if self.listener is not None:
            _close_quietly(self.listener)
        for slot in self.slots:
            self._send_to(slot, wire.SHUTDOWN, None)
        deadline = time.monotonic() + join_grace(self.machine.timeout)
        with self.lock:
            children = list(self._spawned)
        for proc in children:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=join_grace(self.machine.timeout))
        for slot in self.slots:
            with slot.wlock:
                conn, slot.conn = slot.conn, None
            if conn is not None:
                _close_quietly(conn)
        with _CHILDREN_LOCK:
            for proc in children:
                if not proc.is_alive():
                    _CHILDREN.discard(proc)

    # -------------------------------------------------------------- assembly
    def _assemble(self, raise_on_error: bool) -> RunResult:
        machine = self.machine
        results: list[Any] = [None] * machine.size
        errors: dict[int, BaseException] = {}
        per_rank: list[Counts] = []
        ledgers: list[PhaseLedger] = []
        peaks: list[int] = []
        fault_log = FaultLog()
        for slot in self.slots:
            clock = Counts()
            ledger = PhaseLedger()
            peak = 0
            for census in slot.censuses:
                clock = clock.merge(census["clock"])
                for name, counts in census["ledger"]:
                    ledger.set_phase(name)
                    ledger.charge(f=counts.f, bw=counts.bw, l=counts.l)
                peak = max(peak, census["peak"])
                fault_log.absorb(census["fault_entries"])
                machine.fault_schedule.absorb_fired(census["fired"])
                ops = census.get("recorder_ops")
                if ops and machine.recorder is not None:
                    machine.recorder.absorb(ops)
            per_rank.append(clock)
            ledgers.append(ledger)
            peaks.append(peak)
            results[slot.rank] = slot.result
            if slot.error is not None:
                errors[slot.rank] = slot.error
        critical = Counts()
        for counts in per_rank:
            critical = critical.merge(counts)
        result = RunResult(
            results=results,
            critical_path=critical,
            per_rank=per_rank,
            phase_costs=merge_phase_costs(ledgers),
            peak_memory=peaks,
            fault_log=fault_log,
            errors=errors,
            trace=None,
            metrics=None,
        )
        if errors and raise_on_error:
            raise_run_errors(errors)
        return result
