"""Execution backends for :class:`~repro.machine.engine.Machine`.

The machine's programming model (``Communicator``, collectives, fault
semantics) is backend-neutral.  Two backends realize it:

``sim``
    The default thread-per-rank simulator living in
    :mod:`repro.machine.engine` — virtual-time deterministic, traceable,
    race-checkable.

``proc``
    One real OS process per rank (:mod:`repro.machine.backends.proc`),
    exchanging messages over localhost sockets, with live fault
    injection (``SIGKILL`` at scheduled fault points).  Conformance is
    gated dynamically: both backends must produce bit-identical products
    and byte-identical communication graphs.

Select with ``REPRO_BACKEND`` / :func:`repro.util.env.backend_scope`, or
per-machine with ``Machine(backend=...)``.  See docs/MACHINE.md
("Backends") for the wire protocol and the watchdog state machine.
"""

from __future__ import annotations

__all__ = ["ProcBackend", "live_children"]


def __getattr__(name: str):
    # Lazy: importing the package must not pull in socket/process
    # machinery for sim-only runs (engine.py imports the backend inside
    # Machine.run for the same reason).
    if name in __all__:
        from repro.machine.backends import proc

        return getattr(proc, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
