"""A restartable multiplication demo for live-kill testing.

The paper's fault-tolerant variants recover through in-protocol
replacement: the *same* execution context catches the
:class:`~repro.machine.errors.HardFault` and re-enters as the
replacement processor.  A real ``SIGKILL`` destroys that context, so the
process backend's ``respawn`` fault mode instead restarts the rank
program from the top in a fresh process.  This module provides the
program that makes the headline demonstration honest — *kill -9 a worker
mid-multiplication and still get the exact product* — by being correct
under **both** recovery styles:

- on the simulator (or ``REPRO_PROC_FAULTS=sim``) the worker catches the
  fault in-thread, calls ``begin_replacement`` and re-runs its slice;
- under ``REPRO_PROC_FAULTS=respawn`` the respawned process simply runs
  the same code from the top.

Every worker is stateless by construction (its partial product is a pure
function of the inputs and its rank), which is exactly the property that
makes restart-from-scratch a valid replacement protocol.
"""

from __future__ import annotations

import time
from typing import Any

from repro.machine.errors import HardFault, PeerDead
from repro.machine.tags import TAG_BACKEND_DEMO
from repro.util.env import poll_interval

__all__ = ["restartable_slice_multiply"]

_WORK_PHASE = "multiplication"
_COLLECT_PHASE = "collect"


def _chunks(y: int, width: int) -> list[int]:
    """``y`` split into ``width``-bit words, least significant first."""
    mask = (1 << width) - 1
    out: list[int] = []
    while y:
        out.append(y & mask)
        y >>= width
    return out or [0]


def restartable_slice_multiply(comm: Any, x: int, y: int) -> int | None:
    """SPMD product ``x * y``: workers multiply word slices, rank 0 sums.

    Worker ``w`` (ranks 1..P-1) computes ``sum_j (x * y_j) << j*width``
    over its strided share of the word chunks of ``y`` and sends the
    partial to rank 0; the partials partition the chunks, so their sum is
    exactly ``x * y``.  Rank 0 returns the product; workers return None.

    Any rank hit by a scheduled hard fault recovers by replacement and
    recomputes from the inputs (see the module docstring for why restart
    is sufficient here).
    """
    while True:
        try:
            return _attempt(comm, x, y)
        except HardFault:
            comm.begin_replacement()


def _attempt(comm: Any, x: int, y: int) -> int | None:
    if comm.size < 2:
        raise ValueError("restartable_slice_multiply needs at least 2 ranks")
    if comm.rank == 0:
        return _collect(comm)
    width = comm.word_bits
    chunks = _chunks(y, width)
    with comm.phase(_WORK_PHASE):
        partial = 0
        for j in range(comm.rank - 1, len(chunks), comm.size - 1):
            # One charged op per chunk multiply: gives the phase a real
            # op-index space for fault schedules to land in.
            comm.charge_flops(1)
            partial += (x * chunks[j]) << (j * width)
        comm.send(0, partial, tag=TAG_BACKEND_DEMO + comm.rank)
    return None


def _collect(comm: Any) -> int:
    total = 0
    with comm.phase(_COLLECT_PHASE):
        for w in range(1, comm.size):
            total += _collect_partial(comm, w)
    return total


def _collect_partial(comm: Any, worker: int) -> int:
    """Receive ``worker``'s partial, waiting out a death-and-replacement.

    ``PeerDead`` here means the worker died *before* its send landed (a
    post-send death still delivers — the fail-over path drains the
    mailbox first).  Its replacement recomputes and re-sends, so keep
    retrying until the machine's own receive deadline has elapsed; a
    worker that is never replaced (fault mode ``kill``) surfaces as the
    final PeerDead.
    """
    deadline = time.monotonic() + comm._state.timeout
    while True:
        try:
            return comm.recv(worker, tag=TAG_BACKEND_DEMO + worker)
        except PeerDead:
            if time.monotonic() > deadline:
                raise
            time.sleep(poll_interval())
