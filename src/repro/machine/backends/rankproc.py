"""Rank-process side of the process backend.

Each rank runs :func:`rank_main` in its own OS process: it connects back
to the coordinator, rebuilds the simulator's per-rank machinery — a
local :class:`~repro.machine.network.Router` mailbox, a
:class:`~repro.machine.comm._SharedState` whose liveness lists are
*mirrors* maintained from coordinator broadcasts, and a
:class:`ProcCommunicator` — and then runs the **unmodified** rank
program against the ordinary :class:`~repro.machine.comm.Communicator`
API.

Three threads per rank process:

- the *program* thread (the process main thread) runs the rank program;
- the *receiver* thread drains the socket — message deliveries into the
  local router, liveness events into the mirrors, control replies to the
  program thread;
- the *heartbeat* thread pings the coordinator every
  ``REPRO_HEARTBEAT`` seconds so a wedged process is distinguishable
  from a slow one.

Only the handful of primitives that need machine-global consistency
(``vote`` / ``poll_votes`` / ``gate`` / ``agree_dead`` /
``begin_replacement`` / death and abort announcements) round-trip to
the coordinator; everything else — cost clocks, ledgers, phases, fault
points, memory, the schedule recorder — is rank-local, exactly as in
the simulator, which is what makes fault-free runs bit-identical across
backends.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.machine.backends import wire
from repro.machine.comm import Communicator, _SharedState
from repro.machine.errors import (
    CommError,
    DeadlockError,
    HardFault,
    MachineError,
)
from repro.machine.fault import FaultLog, FaultSchedule
from repro.machine.memory import LocalMemory
from repro.machine.network import Message, Router
from repro.machine.record import ScheduleRecorder
from repro.util.env import heartbeat_interval, join_grace, poll_interval

__all__ = ["RankConfig", "ProcRouter", "ProcCommunicator", "rank_main"]


@dataclass
class RankConfig:
    """Everything a rank process needs, shipped via the spawn pickle.

    ``timeout`` is the machine's *already scaled* per-receive deadline —
    the child must not apply ``REPRO_TIMEOUT_SCALE`` a second time.
    ``incarnation`` is nonzero only for a respawned replacement process
    (live fault mode).
    """

    rank: int
    size: int
    host: str
    port: int
    word_bits: int
    memory_words: float
    timeout: float
    topology: Any
    fault_schedule: FaultSchedule
    fault_mode: str
    record: bool
    program: Any
    prog_args: tuple
    incarnation: int = 0


def _picklable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a stand-in
    :class:`MachineError` carrying its repr (rank programs may raise
    exceptions holding sockets, locks, ...)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return MachineError(f"unpicklable rank error: {exc!r}")


class HubClient:
    """The rank process's connection to the coordinator.

    Owns the socket, serializes concurrent writers (program, heartbeat),
    and matches ``CONTROL`` round-trips.  Only the program thread issues
    controls, so a single reply slot suffices.
    """

    def __init__(self, sock: socket.socket, config: RankConfig):
        self.sock = sock
        self.config = config
        self.fault_mode = config.fault_mode
        self.state: _SharedState | None = None
        self.router: "ProcRouter | None" = None
        self.sent_result = False
        self._wlock = threading.Lock()
        self._seq = 0
        self._reply_ready = threading.Event()
        self._reply: tuple[int, Any] | None = None
        self._last_purge = 0
        self._stop_heartbeat = threading.Event()

    # -- frame output (any thread) ------------------------------------------
    def send(self, kind: str, payload: Any = None) -> None:
        with self._wlock:
            wire.send_frame(self.sock, kind, payload)

    def post_message(self, msg: Message) -> None:
        self.send(wire.DATA, msg)

    # -- handshake (program thread, before the receiver starts) ------------
    def handshake(self) -> dict[str, Any]:
        """HELLO then block for GO; returns the mirror snapshot."""
        self.send(wire.HELLO, (self.config.rank, self.config.incarnation))
        kind, payload = wire.recv_frame(self.sock)
        if kind != wire.GO:
            raise MachineError(f"expected GO from coordinator, got {kind!r}")
        return payload

    # -- control round-trips (program thread only) --------------------------
    def control(self, op: str, *args: Any) -> Any:
        self._seq += 1
        seq = self._seq
        self._reply_ready.clear()
        self.send(wire.CONTROL, (seq, op, args))
        if not self._reply_ready.wait(join_grace(self.config.timeout)):
            raise DeadlockError(
                f"rank {self.config.rank}: coordinator never answered "
                f"control {op!r}"
            )
        assert self._reply is not None
        got_seq, value = self._reply
        if got_seq != seq:
            raise MachineError(
                f"control reply out of sequence ({got_seq} != {seq})"
            )
        return value

    # -- receiver thread -----------------------------------------------------
    def start_receiver(self) -> None:
        threading.Thread(
            target=self._receive_loop,
            name=f"rank-{self.config.rank}-recv",
            daemon=True,
        ).start()

    def _receive_loop(self) -> None:
        state = self.state
        router = self.router
        assert state is not None and router is not None
        try:
            while True:
                kind, payload = wire.recv_frame(self.sock)
                if kind == wire.DELIVER:
                    router.post_local(payload)
                elif kind == wire.EVENT:
                    self._apply_event(state, payload)
                elif kind == wire.PURGE_DONE:
                    self._last_purge = router.purge_local(self.config.rank)
                elif kind == wire.CONTROL_REPLY:
                    self._reply = payload
                    self._reply_ready.set()
                elif kind == wire.SHUTDOWN:
                    # Coordinator teardown: nothing we produce can be
                    # consumed any more.  Exit hard — the program thread
                    # may be blocked in a receive.
                    os._exit(0 if self.sent_result else 3)
        except (EOFError, OSError):
            # Coordinator gone.  A finished rank exits normally with the
            # program thread; an unfinished one must not linger as an
            # orphan working for nobody.
            if not self.sent_result:
                os._exit(1)
        except wire.WireError:
            # Corrupt coordinator frame: the stream can never be
            # resynchronized and no recovery protocol exists above it.
            # Exit hard with a distinct code; the coordinator accounts
            # the EOF as an unexpected death.
            if not self.sent_result:
                os._exit(4)

    @staticmethod
    def _apply_event(state: _SharedState, payload: tuple) -> None:
        """Fold a liveness broadcast into the mirrors.

        Events carry absolute values (not deltas) so re-applying one a
        rank already knows — e.g. its own death, applied locally before
        the coordinator echoed it — is harmless.
        """
        op, rank, value = payload
        with state.lock:
            if op == "dead":
                state.alive[rank] = False
            elif op == "replacement":
                state.incarnations[rank] = value
                state.alive[rank] = True
            elif op == "finished":
                state.finished[rank] = True
            elif op == "abort":
                state.aborted_task[rank] = value

    # -- heartbeat thread ----------------------------------------------------
    def start_heartbeat(self) -> None:
        threading.Thread(
            target=self._heartbeat_loop,
            name=f"rank-{self.config.rank}-heartbeat",
            daemon=True,
        ).start()

    def _heartbeat_loop(self) -> None:
        interval = heartbeat_interval()
        while not self._stop_heartbeat.wait(interval):
            try:
                self.send(wire.HEARTBEAT, self.config.rank)
            except OSError:
                return

    def stop(self) -> None:
        self._stop_heartbeat.set()


class ProcRouter(Router):
    """The rank-local mailbox, with remote posting through the coordinator.

    Only this rank's own mailbox is live here: ``post`` to any other
    rank becomes a ``DATA`` frame, and the receiver thread feeds
    forwarded deliveries back in via :meth:`post_local`.  ``collect``
    (and with it the entire matched-receive/fail-over machinery of
    :class:`~repro.machine.comm.Communicator`) is inherited unchanged.
    """

    def __init__(self, size: int, default_timeout: float, client: HubClient):
        super().__init__(size, default_timeout=default_timeout)
        self._client = client
        self._own_rank = client.config.rank

    def post(self, msg: Message) -> None:
        self._check_rank(msg.dest)
        self._check_rank(msg.source)
        if msg.dest == self._own_rank:
            super().post(msg)
        else:
            self._client.post_message(msg)

    def post_local(self, msg: Message) -> None:
        """Deliver a coordinator-forwarded message (receiver thread)."""
        super().post(msg)

    def purge_local(self, rank: int) -> int:
        return super().purge(rank)

    def purge(self, rank: int) -> int:
        """Purge this rank's mailbox with a well-defined FIFO cut.

        The coordinator writes a ``PURGE_DONE`` marker down this rank's
        own socket (under the destination write lock) before answering
        the control, so every message it forwarded before the purge is
        in the socket ahead of the marker: the receiver thread delivers
        them, then purges, then unblocks the control reply.  Exactly the
        messages "already in the network" at the purge are dropped.
        """
        if rank != self._own_rank:
            raise CommError(
                f"rank {self._own_rank} cannot purge rank {rank}'s mailbox"
            )
        self._client.control("purge", rank)
        return self._client._last_purge


class ProcCommunicator(Communicator):
    """The standard communicator with consistency primitives rerouted.

    Everything rank-local is inherited; the overrides below are exactly
    the operations whose simulator implementation reads or writes
    *machine-global* shared state, which on this backend lives in the
    coordinator.
    """

    def __init__(self, state: _SharedState, rank: int, client: HubClient):
        super().__init__(state, rank)
        self._client = client

    # -- agreement / votes / gates ------------------------------------------
    def agree_dead(self, key: Any, candidates: Any) -> frozenset:
        dead = self._client.control("agree_dead", key, tuple(candidates))
        recorder = self._state.recorder
        if recorder is not None:
            recorder.on_agree_dead(
                self.rank, self.current_phase, key, candidates, dead,
                self.incarnation,
            )
        return dead

    def vote(self, key: Any, value: bool) -> None:
        self._client.control("vote", key, self.rank, value)
        recorder = self._state.recorder
        if recorder is not None:
            recorder.on_vote(
                self.rank, self.current_phase, key, value, self.incarnation
            )

    def poll_votes(self, key: Any) -> dict[int, bool]:
        return dict(self._client.control("poll_votes", key))

    def gate(
        self, key: Any, participants: Any, timeout: float | None = None
    ) -> None:
        state = self._state
        self._client.control("gate_arrive", key, self.rank)
        recorder = state.recorder
        if recorder is not None:
            recorder.on_gate(
                self.rank, self.current_phase, key, participants,
                self.incarnation,
            )
        limit = state.timeout if timeout is None else timeout
        deadline = time.monotonic() + limit
        interval = poll_interval()
        while True:
            if self._client.control("gate_poll", key, tuple(participants)):
                return
            if time.monotonic() > deadline:
                raise DeadlockError(
                    f"rank {self.rank}: gate {key!r} never completed"
                )
            time.sleep(interval)

    # -- withdrawal ----------------------------------------------------------
    def mark_aborted(self, task: int) -> None:
        state = self._state
        with state.lock:
            state.aborted_task[self.rank] = task
        self._client.control("abort", self.rank, task)
        recorder = state.recorder
        if recorder is not None:
            recorder.on_abort(
                self.rank, self.current_phase, task, self.incarnation
            )

    # -- fault path ----------------------------------------------------------
    def _die(self, op_index: int) -> None:
        state = self._state
        phase = self.current_phase
        incarnation = self.incarnation
        with state.lock:
            state.alive[self.rank] = False
        state.fault_log.record(
            self.rank, phase, op_index, incarnation, kind="hard"
        )
        if self._client.fault_mode in ("kill", "respawn"):
            # Live injection: ship the census (clock, ledger, recorder
            # ops, fault log — everything a SIGKILL would destroy), then
            # hold still at the scheduled fault point and wait for the
            # coordinator's kill.  This process never executes another
            # instruction of the rank program.
            census = build_census(self, phase=phase, op_index=op_index)
            self._client.send(wire.FAULT_REQ, census)
            while True:
                time.sleep(poll_interval())
        self._client.control("die", self.rank)
        self.memory.wipe()
        state.heaps[self.rank].clear()
        raise HardFault(self.rank, phase, op_index)

    def begin_replacement(self, purge: bool = True) -> int:
        state = self._state
        if purge:
            state.router.purge(self.rank)
        with state.lock:
            if state.alive[self.rank]:
                raise CommError(
                    f"rank {self.rank} called begin_replacement while alive"
                )
        new_inc = self._client.control("replacement", self.rank)
        with state.lock:
            state.incarnations[self.rank] = new_inc
            state.alive[self.rank] = True
        self._phase_ops = 0
        recorder = state.recorder
        if recorder is not None:
            recorder.on_replacement(
                self.rank, self.current_phase, purge, new_inc
            )
        return new_inc


def build_census(
    comm: Communicator,
    phase: str | None = None,
    op_index: int | None = None,
    result: Any = None,
    error: BaseException | None = None,
) -> dict[str, Any]:
    """The rank's complete accounting state, ready to ship.

    Sent with ``RESULT`` at normal completion and with ``FAULT_REQ``
    just before a live kill — either way the coordinator can assemble
    its share of the :class:`~repro.machine.engine.RunResult` without
    this process surviving.
    """
    state = comm._state
    ledger = comm.ledger
    recorder = state.recorder
    return {
        "rank": comm.rank,
        "inc": comm.incarnation,
        "clock": comm.clock.snapshot(),
        "ledger": [(name, ledger.get(name)) for name in ledger.phases()],
        "peak": comm.memory.peak,
        "fault_entries": state.fault_log.entries,
        "fired": state.fault_schedule.fired,
        "recorder_ops": recorder.ops() if recorder is not None else None,
        "phase": phase,
        "op_index": op_index,
        "result": result,
        "error": None if error is None else _picklable_error(error),
    }


def rank_main(config: RankConfig) -> None:
    """Entry point of a rank process (the spawn target)."""
    sock = socket.create_connection((config.host, config.port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    client = HubClient(sock, config)
    snapshot = client.handshake()
    router = ProcRouter(config.size, config.timeout, client)
    memories = [
        LocalMemory(config.memory_words, rank=r) for r in range(config.size)
    ]
    state = _SharedState(
        size=config.size,
        router=router,
        word_bits=config.word_bits,
        memories=memories,
        fault_schedule=config.fault_schedule,
        fault_log=FaultLog(),
        timeout=config.timeout,
        topology=config.topology,
        tracer=None,
        recorder=ScheduleRecorder() if config.record else None,
    )
    with state.lock:
        state.alive[:] = snapshot["alive"]
        state.finished[:] = snapshot["finished"]
        state.aborted_task[:] = snapshot["aborted"]
        state.incarnations[:] = snapshot["incarnations"]
    client.state = state
    client.router = router
    client.start_receiver()
    client.start_heartbeat()
    comm = ProcCommunicator(state, config.rank, client)
    result: Any = None
    error: BaseException | None = None
    try:
        result = config.program(comm, *config.prog_args)
    except BaseException as exc:  # noqa: BLE001 - shipped to the coordinator
        error = exc
        # Dead-for-everyone semantics, as in the simulator's runner: a
        # rank failing outside the fault protocol flips its liveness so
        # peers unblock fast.
        with state.lock:
            state.alive[config.rank] = False
        try:
            client.control("die", config.rank)
        except (MachineError, OSError):  # repro-lint: disable=EXC001 -- audited: best-effort death notice; the error itself still ships in the census
            pass
    client.stop()
    try:
        census = build_census(comm, result=result, error=error)
        client.send(wire.RESULT, census)
        client.sent_result = True
        client.send(wire.FIN, config.rank)
    except OSError:
        os._exit(1)
    sock.close()
