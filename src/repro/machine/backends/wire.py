"""Socket wire protocol for the process backend.

Every frame on a backend socket is a 4-byte big-endian length prefix
followed by a pickled ``(kind, payload)`` pair.  Per-socket FIFO is the
protocol's only ordering primitive — the coordinator forwards frames
under a per-destination write lock, so a frame is either fully written
before the next or fully after it, and the correctness arguments in
docs/MACHINE.md ("Backends") all reduce to this FIFO property.

Frame kinds
-----------
Child -> coordinator: ``HELLO`` (rank announces itself), ``DATA`` (a
pickled :class:`~repro.machine.network.Message` for another rank),
``CONTROL`` (a sequenced request — vote/gate/agreement/liveness),
``HEARTBEAT``, ``FAULT_REQ`` (live fault mode: "kill me here", carrying
the rank's census so nothing is lost), ``RESULT`` (final census with the
program's return value or error), ``FIN`` (no further frames follow).

Coordinator -> child: ``GO`` (all ranks connected; carries the mirror
snapshot), ``DELIVER`` (a forwarded message), ``CONTROL_REPLY``,
``EVENT`` (a liveness broadcast: dead / replacement / finished / abort),
``PURGE_DONE`` (the mailbox-purge FIFO cut marker), ``SHUTDOWN``.

Failure modes
-------------
A peer closing its socket *between* frames is the one quiet event —
:func:`recv_frame` raises :class:`EOFError` and the backends treat it as
a (possibly expected) disconnect.  Everything else is loud: a socket cut
mid-frame, a length prefix beyond :data:`MAX_FRAME_BYTES`, or a body
that does not decode to a ``(kind, payload)`` pair raises
:class:`WireError`, because a half-frame accepted quietly would be the
machine layer's one chance to turn corruption into a silent wrong
answer.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.util.env import port_range

__all__ = [
    "HELLO",
    "GO",
    "DATA",
    "DELIVER",
    "CONTROL",
    "CONTROL_REPLY",
    "EVENT",
    "HEARTBEAT",
    "FAULT_REQ",
    "RESULT",
    "FIN",
    "PURGE_DONE",
    "SHUTDOWN",
    "MAX_FRAME_BYTES",
    "WireError",
    "send_frame",
    "recv_frame",
    "bind_listener",
]

HELLO = "hello"
GO = "go"
DATA = "data"
DELIVER = "deliver"
CONTROL = "control"
CONTROL_REPLY = "control-reply"
EVENT = "event"
HEARTBEAT = "heartbeat"
FAULT_REQ = "fault-req"
RESULT = "result"
FIN = "fin"
PURGE_DONE = "purge-done"
SHUTDOWN = "shutdown"

_HEADER = struct.Struct(">I")

#: Largest frame the protocol accepts.  The biggest legitimate frames
#: (the GO snapshot, a RESULT census with recorder ops, a DATA message
#: carrying operand words) are megabytes at most; a 4-byte length prefix
#: read from a desynchronized or corrupt stream averages ~2 GiB, so the
#: cap turns garbage headers into an immediate :class:`WireError`
#: instead of a giant allocation followed by a hang waiting for bytes
#: that will never come.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Loopback only: the backend is a local execution engine, not a network
#: service, and must never accept a connection from another host.
_HOST = "127.0.0.1"


class WireError(RuntimeError):
    """A malformed frame: truncated, oversized, or undecodable.

    Distinct from :class:`EOFError` (peer closed cleanly *between*
    frames) so the backends can keep treating clean closes as ordinary
    disconnects while anything that smells of corruption stays loud.
    """


def send_frame(sock: socket.socket, kind: str, payload: Any = None) -> None:
    """Write one frame.  The caller serializes concurrent writers."""
    body = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"refusing to send {len(body)}-byte frame "
            f"(kind {kind!r}, cap {MAX_FRAME_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes.

    Zero bytes before the first byte of a *header* is the clean-close
    signal (:class:`EOFError`); running dry anywhere else means the peer
    died mid-frame and the stream can never be resynchronized
    (:class:`WireError`).
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0 and what == "header":
                raise EOFError("peer closed the connection")
            raise WireError(
                f"connection closed mid-{what}: got {got} of {n} bytes"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[str, Any]:
    """Read one frame.

    Raises :class:`EOFError` on a peer that closed between frames and
    :class:`WireError` on anything malformed — truncated mid-frame,
    length prefix over :data:`MAX_FRAME_BYTES`, or a body that does not
    unpickle to a ``(kind, payload)`` pair with a string kind.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size, "header"))
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame length {length} exceeds cap {MAX_FRAME_BYTES}; "
            "corrupt or desynchronized stream"
        )
    body = _recv_exact(sock, length, "body")
    try:
        kind, payload = pickle.loads(body)
    except Exception as exc:
        raise WireError(
            f"undecodable {length}-byte frame body "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if not isinstance(kind, str):
        raise WireError(
            f"frame kind must be str, got {type(kind).__name__}"
        )
    return kind, payload


def bind_listener(backlog: int) -> socket.socket:
    """A listening loopback socket on the configured port range.

    ``REPRO_PORT_RANGE`` (``LO-HI``) is scanned for the first free port;
    unset means a kernel-assigned ephemeral port.  Raises
    :class:`OSError` when every port in the range is taken.
    """
    window = port_range()
    if window is None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((_HOST, 0))
        listener.listen(backlog)
        return listener
    lo, hi = window
    last_error: OSError | None = None
    for port in range(lo, hi + 1):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind((_HOST, port))
        except OSError as exc:
            listener.close()
            last_error = exc
            continue
        listener.listen(backlog)
        return listener
    raise OSError(
        f"no free port in REPRO_PORT_RANGE {lo}-{hi}"
    ) from last_error
