"""Socket wire protocol for the process backend.

Every frame on a backend socket is a 4-byte big-endian length prefix
followed by a pickled ``(kind, payload)`` pair.  Per-socket FIFO is the
protocol's only ordering primitive — the coordinator forwards frames
under a per-destination write lock, so a frame is either fully written
before the next or fully after it, and the correctness arguments in
docs/MACHINE.md ("Backends") all reduce to this FIFO property.

Frame kinds
-----------
Child -> coordinator: ``HELLO`` (rank announces itself), ``DATA`` (a
pickled :class:`~repro.machine.network.Message` for another rank),
``CONTROL`` (a sequenced request — vote/gate/agreement/liveness),
``HEARTBEAT``, ``FAULT_REQ`` (live fault mode: "kill me here", carrying
the rank's census so nothing is lost), ``RESULT`` (final census with the
program's return value or error), ``FIN`` (no further frames follow).

Coordinator -> child: ``GO`` (all ranks connected; carries the mirror
snapshot), ``DELIVER`` (a forwarded message), ``CONTROL_REPLY``,
``EVENT`` (a liveness broadcast: dead / replacement / finished / abort),
``PURGE_DONE`` (the mailbox-purge FIFO cut marker), ``SHUTDOWN``.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.util.env import port_range

__all__ = [
    "HELLO",
    "GO",
    "DATA",
    "DELIVER",
    "CONTROL",
    "CONTROL_REPLY",
    "EVENT",
    "HEARTBEAT",
    "FAULT_REQ",
    "RESULT",
    "FIN",
    "PURGE_DONE",
    "SHUTDOWN",
    "send_frame",
    "recv_frame",
    "bind_listener",
]

HELLO = "hello"
GO = "go"
DATA = "data"
DELIVER = "deliver"
CONTROL = "control"
CONTROL_REPLY = "control-reply"
EVENT = "event"
HEARTBEAT = "heartbeat"
FAULT_REQ = "fault-req"
RESULT = "result"
FIN = "fin"
PURGE_DONE = "purge-done"
SHUTDOWN = "shutdown"

_HEADER = struct.Struct(">I")

#: Loopback only: the backend is a local execution engine, not a network
#: service, and must never accept a connection from another host.
_HOST = "127.0.0.1"


def send_frame(sock: socket.socket, kind: str, payload: Any = None) -> None:
    """Write one frame.  The caller serializes concurrent writers."""
    body = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[str, Any]:
    """Read one frame; raises :class:`EOFError` on a closed peer."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    kind, payload = pickle.loads(_recv_exact(sock, length))
    return kind, payload


def bind_listener(backlog: int) -> socket.socket:
    """A listening loopback socket on the configured port range.

    ``REPRO_PORT_RANGE`` (``LO-HI``) is scanned for the first free port;
    unset means a kernel-assigned ephemeral port.  Raises
    :class:`OSError` when every port in the range is taken.
    """
    window = port_range()
    if window is None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((_HOST, 0))
        listener.listen(backlog)
        return listener
    lo, hi = window
    last_error: OSError | None = None
    for port in range(lo, hi + 1):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind((_HOST, port))
        except OSError as exc:
            listener.close()
            last_error = exc
            continue
        listener.listen(backlog)
        return listener
    raise OSError(
        f"no free port in REPRO_PORT_RANGE {lo}-{hi}"
    ) from last_error
