"""Peer-to-peer message transport.

A :class:`Router` holds one mailbox per destination rank.  Messages are
matched MPI-style by ``(source, tag)``; receives block on a condition
variable with a (generous) timeout so that protocol bugs surface as
:class:`~repro.machine.errors.DeadlockError` instead of hangs.

Messages carry the sender's :class:`~repro.machine.costs.Counts` clock
snapshot (for critical-path accounting), the payload's size in words, and
the sender's incarnation number.  Messages addressed to a dead rank are
accepted and dropped when the replacement incarnation purges its mailbox —
modeling loss of in-flight data on a hard fault.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.machine.costs import Counts
from repro.machine.errors import CommError, DeadlockError

__all__ = ["Message", "Router"]


@dataclass(frozen=True)
class Message:
    source: int
    dest: int
    tag: int
    payload: Any
    words: int
    clock: Counts
    incarnation: int


class Router:
    """Mailboxes for ``size`` ranks with (source, tag) matching."""

    def __init__(self, size: int, default_timeout: float = 60.0):
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self.default_timeout = default_timeout
        self._locks = [threading.Condition() for _ in range(size)]
        self._queues: list[list[Message]] = [[] for _ in range(size)]  # guarded-by: _locks

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise CommError(f"rank {rank} out of range [0, {self.size})")

    def post(self, msg: Message) -> None:
        """Deposit a message in the destination's mailbox."""
        self._check_rank(msg.dest)
        self._check_rank(msg.source)
        cond = self._locks[msg.dest]
        with cond:
            self._queues[msg.dest].append(msg)
            cond.notify_all()

    def collect(
        self,
        dest: int,
        source: int,
        tag: int,
        timeout: float | None = None,
    ) -> Message:
        """Blocking matched receive for rank ``dest``.

        Raises :class:`DeadlockError` when no matching message arrives
        within the timeout.
        """
        self._check_rank(dest)
        self._check_rank(source)
        if timeout is None:
            timeout = self.default_timeout
        cond = self._locks[dest]
        with cond:
            deadline = None
            while True:
                queue = self._queues[dest]
                for i, msg in enumerate(queue):
                    if msg.source == source and msg.tag == tag:
                        return queue.pop(i)
                # Wall-clock is confined to the receive *timeout*: it bounds
                # how long a real thread may block before the run is declared
                # deadlocked (a stuck peer never advances virtual time, so no
                # virtual clock can detect it).  Delivery order and all
                # charged costs are independent of these readings.
                if deadline is None:
                    import time

                    deadline = time.monotonic() + timeout  # repro-lint: disable=DET001
                    remaining = timeout
                else:
                    import time

                    remaining = deadline - time.monotonic()  # repro-lint: disable=DET001
                if remaining <= 0 or not cond.wait(timeout=remaining):
                    raise DeadlockError(
                        f"rank {dest}: no message from rank {source} with tag "
                        f"{tag} after {timeout:.1f}s"
                    )

    def purge(self, rank: int) -> int:
        """Discard every pending message for ``rank`` (fault data loss).
        Returns the number of dropped messages."""
        self._check_rank(rank)
        cond = self._locks[rank]
        with cond:
            dropped = len(self._queues[rank])
            self._queues[rank].clear()
        return dropped

    def pending(self, rank: int) -> int:
        """Number of queued messages for ``rank`` (for tests/diagnostics)."""
        self._check_rank(rank)
        with self._locks[rank]:
            return len(self._queues[rank])
