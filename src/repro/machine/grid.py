"""Processor-grid bookkeeping for the BFS-DFS traversal (paper Section 3).

Processors are labeled with ``log_(2k-1) P``-digit strings in base
``q = 2k-1``.  At the ``i``-th BFS step the machine is viewed as a
``P/q × q`` grid in which the ``i``-th digit of a rank's label is its
*column* (= which of the ``2k-1`` sub-problems it takes) and the remaining
digits form its *row*.  Ranks in the same row at step ``i`` agree on all
digits except the ``i``-th; communication in a BFS step happens only within
rows (Figure 1).

Digits here are **little-endian**: ``digit[i]`` is the column at BFS step
``i``.  After ``i`` BFS steps, ranks sharing digits ``0..i-1`` form the
group jointly responsible for one node of the recursion tree.
"""

from __future__ import annotations

from repro.util.validation import check_positive, ilog

__all__ = ["rank_digits", "digits_to_rank", "ProcessorGrid"]


def rank_digits(rank: int, base: int, length: int) -> list[int]:
    """Little-endian base-``base`` digits of ``rank``, padded to ``length``."""
    if base < 2:
        raise ValueError("base must be at least 2")
    if rank < 0:
        raise ValueError("rank must be non-negative")
    digits = []
    v = rank
    for _ in range(length):
        digits.append(v % base)
        v //= base
    if v:
        raise ValueError(f"rank {rank} does not fit in {length} base-{base} digits")
    return digits


def digits_to_rank(digits: list[int], base: int) -> int:
    """Inverse of :func:`rank_digits`."""
    if base < 2:
        raise ValueError("base must be at least 2")
    rank = 0
    for i, d in enumerate(digits):
        if not (0 <= d < base):
            raise ValueError(f"digit {d} out of range for base {base}")
        rank += d * base**i
    return rank


class ProcessorGrid:
    """Digit bookkeeping for ``p`` processors in base ``q = 2k-1``.

    ``p`` must be a power of ``q``; ``levels = log_q p`` is the number of
    BFS steps the traversal performs.
    """

    def __init__(self, p: int, base: int):
        check_positive("p", p)
        if base < 2:
            raise ValueError("base must be at least 2")
        self.p = p
        self.base = base
        self.levels = ilog(p, base)

    def digits(self, rank: int) -> list[int]:
        return rank_digits(rank, self.base, self.levels)

    def column(self, rank: int, step: int) -> int:
        """The sub-problem index this rank takes at BFS step ``step``."""
        self._check_step(step)
        return self.digits(rank)[step]

    def row_index(self, rank: int, step: int) -> int:
        """Row number at step ``step`` (rank with digit ``step`` removed)."""
        self._check_step(step)
        digits = self.digits(rank)
        del digits[step]
        return digits_to_rank(digits, self.base)

    def row_members(self, rank: int, step: int) -> list[int]:
        """The ``q`` ranks in this rank's row at BFS step ``step``
        (ordered by column, i.e. by digit ``step``)."""
        self._check_step(step)
        digits = self.digits(rank)
        out = []
        for c in range(self.base):
            d = list(digits)
            d[step] = c
            out.append(digits_to_rank(d, self.base))
        return out

    def group_members(self, rank: int, after_steps: int) -> list[int]:
        """Ranks sharing digits ``0..after_steps-1`` with ``rank`` — the
        processors working on the same recursion-tree node after
        ``after_steps`` BFS steps (sorted ascending)."""
        if not (0 <= after_steps <= self.levels):
            raise ValueError(f"after_steps {after_steps} out of range")
        digits = self.digits(rank)
        fixed = digits[:after_steps]
        free = self.levels - after_steps
        out = []
        for suffix in range(self.base**free):
            d = fixed + rank_digits(suffix, self.base, free)
            out.append(digits_to_rank(d, self.base))
        return sorted(out)

    def subproblem_path(self, rank: int) -> list[int]:
        """The sequence of sub-problem indices (one per BFS step) that lead
        to this rank's leaf task — simply its digit string."""
        return self.digits(rank)

    def _check_step(self, step: int) -> None:
        if not (0 <= step < self.levels):
            raise ValueError(
                f"step {step} out of range [0, {self.levels}) for P={self.p}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessorGrid(p={self.p}, base={self.base}, levels={self.levels})"
