"""Network topologies: per-hop latency modeling.

The paper's model (Section 2.1) assumes a peer-to-peer network — every
pair one hop apart — which :class:`FullyConnected` reproduces (and is the
machine's default, leaving all baseline measurements unchanged).  Real
machines route over constrained topologies; these classes charge each
message ``hops(src, dst)`` latency units (cut-through routing: bandwidth
is charged once regardless of path length), letting the benchmark harness
ask how the algorithm's fixed "row" communication pattern tolerates
embedding into rings, meshes, tori, hypercubes, and fat-trees.
"""

from __future__ import annotations

from repro.util.validation import check_positive

__all__ = [
    "Topology",
    "FullyConnected",
    "Ring",
    "Mesh2D",
    "Torus2D",
    "Hypercube",
    "FatTree",
]


class Topology:
    """Base class: distances over ``size`` nodes."""

    def __init__(self, size: int):
        check_positive("size", size)
        self.size = size

    def hops(self, src: int, dst: int) -> int:
        """Routing distance between two ranks (0 when equal)."""
        raise NotImplementedError

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.size and 0 <= dst < self.size):
            raise ValueError(f"ranks ({src}, {dst}) out of range [0, {self.size})")

    def diameter(self) -> int:
        """Maximum pairwise distance."""
        return max(
            self.hops(s, d) for s in range(self.size) for d in range(self.size)
        )

    def average_distance(self) -> float:
        """Mean distance over ordered distinct pairs."""
        if self.size == 1:
            return 0.0
        total = sum(
            self.hops(s, d)
            for s in range(self.size)
            for d in range(self.size)
            if s != d
        )
        return total / (self.size * (self.size - 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(size={self.size})"


class FullyConnected(Topology):
    """The paper's peer-to-peer network: everything is one hop."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1


class Ring(Topology):
    """Bidirectional ring: distance is the shorter arc."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.size - d)


class Mesh2D(Topology):
    """``rows x cols`` mesh with Manhattan routing."""

    def __init__(self, rows: int, cols: int):
        check_positive("rows", rows)
        check_positive("cols", cols)
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols

    def _coords(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.cols)

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)


class Torus2D(Mesh2D):
    """``rows x cols`` torus: Manhattan with wraparound."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)


class Hypercube(Topology):
    """``log2(size)``-dimensional hypercube (size a power of two):
    distance is the Hamming distance of the rank labels."""

    def __init__(self, size: int):
        super().__init__(size)
        if size & (size - 1):
            raise ValueError("hypercube size must be a power of two")

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return (src ^ dst).bit_count()


class FatTree(Topology):
    """An ``arity``-ary fat-tree of compute leaves: distance is twice the
    height to the lowest common ancestor (up then down)."""

    def __init__(self, size: int, arity: int = 2):
        super().__init__(size)
        if arity < 2:
            raise ValueError("arity must be at least 2")
        self.arity = arity

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        height = 0
        while src != dst:
            src //= self.arity
            dst //= self.arity
            height += 1
        return 2 * height
