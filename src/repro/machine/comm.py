"""Rank-side communication API (MPI-flavoured).

Each rank program receives a :class:`Communicator`.  It provides:

- point-to-point ``send``/``recv`` with automatic word sizing and
  critical-path clock propagation,
- ``charge_flops`` for local arithmetic accounting,
- phase management (``with comm.phase("evaluation"): ...``) — phases scope
  both the per-phase cost ledger and fault-schedule matching,
- fault machinery: every machine operation is a *fault point*; a scheduled
  hard fault raises :class:`~repro.machine.errors.HardFault`, wipes the
  local memory and marks the rank dead.  Fault-tolerant programs catch it
  and call :meth:`Communicator.begin_replacement` to re-enter as the
  replacement processor (fresh incarnation, empty memory, purged mailbox),
- ``sub(ranks)`` for row/column sub-communicators with translated ranks,
- failure detection (``dead_ranks``, ``is_alive``) — the paper assumes
  faults are detected; we model a perfect failure detector.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from repro.machine.costs import CostClock, PhaseLedger
from repro.machine.errors import CommError, DeadlockError, HardFault, PeerDead
from repro.machine.fault import FaultLog, FaultSchedule
from repro.machine.memory import LocalMemory
from repro.machine.network import Message, Router
from repro.machine.record import ScheduleRecorder
from repro.machine.sizes import payload_words
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.util.env import poll_interval

__all__ = ["Communicator", "SubCommunicator"]

_POLL_INTERVAL = poll_interval()


class _SharedState:
    """Machine-wide state shared by all communicators (engine-owned)."""

    def __init__(
        self,
        size: int,
        router: Router,
        word_bits: int,
        memories: list[LocalMemory],
        fault_schedule: FaultSchedule,
        fault_log: FaultLog,
        timeout: float,
        topology: Any = None,
        tracer: Tracer | None = None,
        recorder: ScheduleRecorder | None = None,
    ):
        from repro.machine.topology import FullyConnected

        self.size = size
        # Explicit None-check: an empty RecordingTracer has len() == 0 and
        # would be falsy under ``tracer or NULL_TRACER``.
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: Communication-schedule recorder (commcheck extraction); None
        #: outside extraction runs, and purely observational when set.
        self.recorder = recorder
        #: Happens-before race detector
        #: (:class:`~repro.racecheck.sanitizer.RaceSanitizer`); installed
        #: by the engine when sanitizing, None otherwise.  Every hook
        #: below is guarded by a None-check, so an unsanitized run pays
        #: one attribute load per synchronization point and nothing else.
        self.sanitizer: Any = None
        #: Cooperative scheduler
        #: (:class:`~repro.machine.engines.event.EventEngine`); installed
        #: by the event engine for the duration of its run, None under
        #: the thread engine.  When set, blocking calls park on the
        #: scheduler instead of polling the wall clock, and posts/deaths
        #: issue deterministic wakes (docs/MACHINE.md "Engines").
        self.scheduler: Any = None
        self.topology = topology or FullyConnected(size)
        self.router = router
        self.word_bits = word_bits
        self.memories = memories
        self.fault_schedule = fault_schedule
        self.fault_log = fault_log
        self.timeout = timeout
        self.lock = threading.Lock()
        self.alive = [True] * size  # guarded-by: lock
        # Ranks whose program has returned (or raised): a finished rank
        # will never send again, so a receiver still blocked on it can
        # fail over immediately instead of waiting out the deadlock
        # detector.  Pending messages still win — the engine sets this
        # only after the rank's last send has been posted.
        self.finished = [False] * size  # guarded-by: lock
        # Logical withdrawal markers: a rank that abandons the current task
        # (polynomial-code column halt, Section 4.2) records the task index
        # here so peers stop waiting for its messages.  -1 = participating.
        self.aborted_task = [-1] * size  # guarded-by: lock
        self.incarnations = [0] * size  # guarded-by: lock
        self.clocks = [CostClock() for _ in range(size)]
        self.ledgers = [PhaseLedger() for _ in range(size)]
        self.heaps: list[dict[str, Any]] = [dict() for _ in range(size)]
        # Runtime-provided agreement on failure sets (models the agreement
        # primitive of fault-tolerant MPI runtimes such as ULFM): the first
        # caller per key snapshots the detector; later callers see the same
        # snapshot, so all ranks act on a consistent dead set.
        self.agreed_dead: dict[Any, frozenset] = {}  # guarded-by: lock
        # Fault-tolerant barrier registrations (see Communicator.gate).
        self.gates: dict[Any, set[int]] = {}  # guarded-by: lock
        # Flag votes collected before a gate (see Communicator.vote).
        self.votes: dict[Any, dict[int, bool]] = {}  # guarded-by: lock


class Communicator:
    """Per-rank handle onto the simulated machine."""

    def __init__(self, state: _SharedState, rank: int):
        self._state = state
        self.rank = rank
        self._phase_ops = 0
        self._soft_ops = 0
        #: Current slowdown multiplier on arithmetic (delay faults; the
        #: paper's third fault category).  1.0 = healthy.
        self.slowdown = 1.0

    # -- introspection -----------------------------------------------------
    @property
    def size(self) -> int:
        return self._state.size

    @property
    def word_bits(self) -> int:
        return self._state.word_bits

    @property
    def memory(self) -> LocalMemory:
        return self._state.memories[self.rank]

    @property
    def heap(self) -> dict[str, Any]:
        """Engine-visible storage wiped on a hard fault."""
        return self._state.heaps[self.rank]

    @property
    def clock(self) -> CostClock:
        return self._state.clocks[self.rank]

    @property
    def ledger(self) -> PhaseLedger:
        return self._state.ledgers[self.rank]

    @property
    def incarnation(self) -> int:
        with self._state.lock:
            return self._state.incarnations[self.rank]

    def is_alive(self, rank: int) -> bool:
        self._detector_yield()
        with self._state.lock:
            return self._state.alive[rank]

    def incarnation_of(self, rank: int) -> int:
        """Current incarnation number of ``rank`` (0 = original processor).
        Protocols use this to wait for a replacement to come up."""
        self._detector_yield()
        with self._state.lock:
            return self._state.incarnations[rank]

    def _detector_yield(self) -> None:
        """Cooperative yield at failure-detector reads (event engine only).

        Programs may legitimately busy-poll the detector ("spin until the
        replacement comes up"); under the one-runnable-rank scheduler such
        a loop would otherwise never let the observed rank run.  Yielding
        here keeps those loops live without charging any cost or touching
        a fault point — detector reads are free in the model under both
        engines.
        """
        scheduler = self._state.scheduler
        if scheduler is not None:
            scheduler.yield_turn(self.rank)

    def agree_dead(self, key: Any, candidates: Sequence[int]) -> frozenset:
        """Consistent failure snapshot (ULFM-style agreement).

        All ranks calling with the same ``key`` observe the same set of
        failed ``candidates`` — the detector state sampled by whichever
        rank got there first.  Ranks that fail *after* the snapshot are
        picked up under a later key.  Pair with :meth:`gate` so the
        snapshot is taken only after every participant has settled.
        """
        state = self._state
        with state.lock:
            if key not in state.agreed_dead:
                state.agreed_dead[key] = frozenset(
                    r for r in candidates if not state.alive[r]
                )
            dead = state.agreed_dead[key]
        sanitizer = state.sanitizer
        if sanitizer is not None:
            sanitizer.on_agree_dead(key)
        recorder = state.recorder
        if recorder is not None:
            recorder.on_agree_dead(
                self.rank, self.current_phase, key, candidates, dead,
                self.incarnation,
            )
        return dead

    def vote(self, key: Any, value: bool) -> None:
        """Record a boolean flag under ``key`` (read after the matching
        :meth:`gate` with :meth:`poll_votes`) — used for consistent group
        decisions such as "did this task attempt succeed everywhere"."""
        state = self._state
        with state.lock:
            state.votes.setdefault(key, {})[self.rank] = value
        sanitizer = state.sanitizer
        if sanitizer is not None:
            sanitizer.on_vote(key)
        recorder = state.recorder
        if recorder is not None:
            recorder.on_vote(
                self.rank, self.current_phase, key, value, self.incarnation
            )

    def poll_votes(self, key: Any) -> dict[int, bool]:
        """All votes recorded under ``key`` so far (vote before the gate,
        read after it, and every live participant's vote is present).

        Named ``poll_votes`` (not ``votes``) so the accessor is not
        mistaken for the guarded ``_SharedState.votes`` field itself."""
        self._detector_yield()
        state = self._state
        sanitizer = state.sanitizer
        if sanitizer is not None:
            sanitizer.on_poll_votes(key)
        with state.lock:
            return dict(state.votes.get(key, {}))

    def gate(self, key: Any, participants: Sequence[int], timeout: float | None = None) -> None:
        """Fault-tolerant barrier: block until every participant has
        either registered at this gate or failed.

        A rank in its hard-fault handler registers too (dead ranks count
        as arrived), so a subsequent :meth:`agree_dead` sees every failure
        that happened before the boundary.  Synchronization itself is
        runtime-provided and charged no cost (its ``O(log P)`` latency is
        dominated by the boundary's reduces).
        """
        import time

        state = self._state
        with state.lock:
            state.gates.setdefault(key, set()).add(self.rank)
        sanitizer = state.sanitizer
        if sanitizer is not None:
            sanitizer.on_gate_arrive(key)
        scheduler = state.scheduler
        if scheduler is not None:
            # Our arrival may complete a gate a parked peer is waiting on.
            scheduler.on_gate_arrival(key, self.rank)
        recorder = state.recorder
        if recorder is not None:
            recorder.on_gate(
                self.rank, self.current_phase, key, participants,
                self.incarnation,
            )
        limit = state.timeout if timeout is None else timeout
        if scheduler is not None:
            # Event engine: park on the scheduler with the set of
            # participants still missing; arrivals strike ranks off that
            # set and wake us when it empties (deaths wake everyone).
            # ``limit`` survives only as the quiescence priority.
            while True:
                with state.lock:
                    arrived = state.gates[key]
                    pending = {
                        p
                        for p in participants
                        if p not in arrived and state.alive[p]
                    }
                if not pending:
                    if sanitizer is not None:
                        sanitizer.on_gate_pass(key)
                    return
                if not scheduler.block_gate(self.rank, key, pending, limit):
                    raise DeadlockError(
                        f"rank {self.rank}: gate {key!r} never completed"
                    )
        # The gate's timeout is a *hang detector* for the real threads
        # backing the simulation, not part of the simulated machine: a
        # stuck peer thread is invisible in virtual time (its clock simply
        # stops advancing), so only the host's wall clock can notice it.
        # No virtual cost is charged here, and a healthy run's trace is
        # unaffected by how long the polling actually took.
        deadline = time.monotonic() + limit  # repro-lint: disable=DET001
        while True:
            with state.lock:
                arrived = state.gates[key]
                ready = all(
                    (p in arrived) or not state.alive[p] for p in participants
                )
            if ready:
                if sanitizer is not None:
                    sanitizer.on_gate_pass(key)
                return
            if time.monotonic() > deadline:  # repro-lint: disable=DET001
                raise DeadlockError(
                    f"rank {self.rank}: gate {key!r} never completed"
                )
            time.sleep(_POLL_INTERVAL)  # repro-lint: disable=DET001

    def dead_ranks(self, ranks: Sequence[int] | None = None) -> set[int]:
        """The perfect failure detector: dead ranks among ``ranks``."""
        self._detector_yield()
        pool = range(self.size) if ranks is None else ranks
        with self._state.lock:
            return {r for r in pool if not self._state.alive[r]}

    # -- logical withdrawal (column halt, Section 4.2) ---------------------
    def mark_aborted(self, task: int) -> None:
        """Record that this rank abandoned task ``task`` (its polynomial-
        code column was killed); peers treat it like a dead sender for
        that task."""
        with self._state.lock:
            self._state.aborted_task[self.rank] = task
        scheduler = self._state.scheduler
        if scheduler is not None:
            # Receivers using abort_check fail over on withdrawal exactly
            # like on death: wake them to re-check.
            scheduler.on_liveness_change()
        recorder = self._state.recorder
        if recorder is not None:
            recorder.on_abort(
                self.rank, self.current_phase, task, self.incarnation
            )
        tracer = self._state.tracer
        if tracer.enabled:
            tracer.on_abort(
                self.rank,
                self.current_phase,
                self.clock.snapshot(),
                self.incarnation,
                task,
            )

    def aborted_at(self, rank: int) -> int:
        """The task index at which ``rank`` abandoned, or -1."""
        with self._state.lock:
            return self._state.aborted_task[rank]

    def withdrawn_ranks(self, ranks: Sequence[int], task: int) -> set[int]:
        """Ranks among ``ranks`` that are dead or have abandoned exactly
        task ``task`` (an abort is scoped to one task; the rank
        participates again in the next)."""
        out = set()
        with self._state.lock:
            for r in ranks:
                at = self._state.aborted_task[r]
                if not self._state.alive[r] or at == task:
                    out.add(r)
        return out

    # -- phases ------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope machine ops under a named algorithm phase.

        With tracing enabled the scope is recorded as a begin/end span
        pair in virtual time; spans nest exactly like the ``with`` blocks
        do, which is what makes the exported Perfetto timeline stack."""
        previous = self.ledger.current_phase
        prev_ops = self._phase_ops
        self.set_phase(name)
        tracer = self._state.tracer
        if tracer.enabled:
            tracer.on_phase_begin(
                self.rank, name, self.clock.snapshot(), self.incarnation
            )
        try:
            yield
        finally:
            if tracer.enabled:
                tracer.on_phase_end(
                    self.rank, name, self.clock.snapshot(), self.incarnation
                )
            self.ledger.set_phase(previous)
            self._phase_ops = prev_ops

    def set_phase(self, name: str) -> None:
        self.ledger.set_phase(name)
        self._phase_ops = 0

    @property
    def current_phase(self) -> str:
        return self.ledger.current_phase

    # -- fault machinery -----------------------------------------------------
    def fault_point(self) -> None:
        """Check the fault schedule; die here if a hard event matches, or
        start running slow if a delay event matches."""
        op = self._phase_ops
        self._phase_ops += 1
        schedule = self._state.fault_schedule
        delay = schedule.take(
            self.rank, self.current_phase, op, self.incarnation, kind="delay"
        )
        if delay is not None:
            self.slowdown = max(self.slowdown, delay.factor)
            self._state.fault_log.record(
                self.rank, self.current_phase, op, self.incarnation, kind="delay"
            )
        if schedule.should_fail(
            self.rank, self.current_phase, op, self.incarnation
        ):
            self._die(op)

    def soft_fault_point(self) -> bool:
        """Check for a scheduled *soft* fault (silent miscalculation).

        Algorithms call this at the completion of a computed value; a True
        return means the value must be corrupted (the processor
        miscalculated without noticing).  Soft checks count their own op
        indices, separate from hard fault points.
        """
        op = self._soft_ops
        self._soft_ops += 1
        if self._state.fault_schedule.should_fail(
            self.rank, self.current_phase, op, self.incarnation, kind="soft"
        ):
            self._state.fault_log.record(
                self.rank, self.current_phase, op, self.incarnation, kind="soft"
            )
            return True
        return False

    def _die(self, op_index: int) -> None:
        state = self._state
        with state.lock:
            state.alive[self.rank] = False
        scheduler = state.scheduler
        if scheduler is not None:
            # Receivers parked on this rank must re-check and fail over.
            scheduler.on_liveness_change()
        phase = self.current_phase
        state.fault_log.record(
            self.rank, phase, op_index, self.incarnation, kind="hard"
        )
        # Data loss: the processor's memory contents are gone.
        self.memory.wipe()
        state.heaps[self.rank].clear()
        raise HardFault(self.rank, phase, op_index)

    def begin_replacement(self, purge: bool = True) -> int:
        """Re-enter as the replacement processor for this grid position.

        Returns the new incarnation number.  The replacement starts with an
        empty memory and (by default) a purged mailbox; recovery protocols
        are responsible for reconstructing its data (Section 4.1 "fault
        recovery").  ``purge=False`` models a network that retains (or
        peers that resend) in-flight messages for the replacement — used by
        protocols whose recovery inputs arrive as ordinary messages.
        """
        state = self._state
        if purge:
            state.router.purge(self.rank)
        with state.lock:
            if state.alive[self.rank]:
                raise CommError(
                    f"rank {self.rank} called begin_replacement while alive"
                )
            state.incarnations[self.rank] += 1
            state.alive[self.rank] = True
            # The abort marker is deliberately left untouched: recovery
            # protocols decide when the replacement rejoins a task.
        self._phase_ops = 0
        recorder = state.recorder
        if recorder is not None:
            recorder.on_replacement(
                self.rank, self.current_phase, purge, self.incarnation
            )
        tracer = state.tracer
        if tracer.enabled:
            tracer.on_replacement(
                self.rank,
                self.current_phase,
                self.clock.snapshot(),
                self.incarnation,
            )
        return self.incarnation

    # -- accounting ----------------------------------------------------------
    def charge_flops(self, ops: int) -> None:
        """Charge ``ops`` arithmetic operations at this rank (a delayed
        processor pays its slowdown factor per operation)."""
        self.fault_point()
        charged = int(ops * self.slowdown)
        self.clock.charge_flops(charged)
        self.ledger.charge(f=charged)

    # -- point-to-point --------------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0, words: int | None = None) -> None:
        """Send ``payload`` to ``dest``.

        ``words`` overrides the automatic :func:`payload_words` sizing.
        Sends to dead ranks succeed silently (the data is lost) — matching
        the physical reality that the sender cannot know the receiver died.
        """
        if dest == self.rank:
            raise CommError(f"rank {self.rank} attempted a self-send")
        self.fault_point()
        nwords = payload_words(payload, self.word_bits) if words is None else words
        hops = self._state.topology.hops(self.rank, dest)
        self.clock.bw += nwords
        self.clock.l += hops
        self.ledger.charge(bw=nwords, l=hops)
        recorder = self._state.recorder
        if recorder is not None:
            recorder.on_send(
                self.rank, self.current_phase, dest, tag, nwords, hops,
                self.incarnation,
            )
        tracer = self._state.tracer
        if tracer.enabled:
            tracer.on_send(
                self.rank, self.current_phase, self.clock.snapshot(),
                self.incarnation, dest, tag, nwords, hops,
            )
        msg = Message(
            source=self.rank,
            dest=dest,
            tag=tag,
            payload=payload,
            words=nwords,
            clock=self.clock.snapshot(),
            incarnation=self.incarnation,
        )
        sanitizer = self._state.sanitizer
        if sanitizer is not None:
            # Registered before the post: once the message is in the
            # router the receiver may match it at any moment.
            sanitizer.on_send(msg)
        self._state.router.post(msg)
        scheduler = self._state.scheduler
        if scheduler is not None:
            scheduler.on_post(msg)

    def recv(
        self,
        source: int,
        tag: int = 0,
        timeout: float | None = None,
        abort_check: int | None = None,
    ) -> Any:
        """Blocking matched receive.

        Raises :class:`PeerDead` when ``source`` is dead — or, when
        ``abort_check`` is given, has withdrawn from task ``abort_check``
        or earlier — and no matching message is queued;
        :class:`DeadlockError` on timeout.
        """
        self.fault_point()
        return self.absorb(
            self._collect_matched(source, tag, timeout, abort_check)
        )

    def recv_raw(
        self,
        source: int,
        tag: int = 0,
        timeout: float | None = None,
        abort_check: int | None = None,
    ) -> Message:
        """Matched receive **without** clock merging or cost charging.

        Returns the raw :class:`~repro.machine.network.Message`; callers
        that decide to use the payload must pass the message to
        :meth:`absorb` — this is how straggler-avoiding collectors pick
        the earliest messages in *virtual* time: physically receive,
        inspect the attached clock, and only absorb (i.e. "wait for")
        the ones actually used.
        """
        self.fault_point()
        return self._collect_matched(source, tag, timeout, abort_check, raw=True)

    def _collect_matched(
        self,
        source: int,
        tag: int,
        timeout: float | None,
        abort_check: int | None,
        raw: bool = False,
        modeled: bool = False,
    ) -> Message:
        """Shared physical-delivery loop behind :meth:`recv`,
        :meth:`recv_raw` and the modeled collective transports: poll the
        router for a match, failing over to :class:`PeerDead` when the
        source can post no further messages.  Every delivered message
        passes through here exactly once, which is where the schedule
        recorder observes receives."""
        if source == self.rank:
            raise CommError(f"rank {self.rank} attempted a self-receive")
        state = self._state
        limit = state.timeout if timeout is None else timeout
        scheduler = state.scheduler
        msg: Message | None = None
        if scheduler is not None:
            # Event engine: non-blocking poll, then park on the scheduler.
            # Nothing can change between a failed poll and the park (only
            # this rank is running), so the check-then-park is atomic; a
            # wake means "re-check", a False verdict means the machine
            # quiesced with this rank the most impatient waiter.
            while msg is None:
                try:
                    msg = state.router.collect(self.rank, source, tag, timeout=0.0)
                except DeadlockError:
                    with state.lock:
                        source_gone = (
                            not state.alive[source]
                            or state.finished[source]
                            or (
                                abort_check is not None
                                and state.aborted_task[source] == abort_check
                            )
                        )
                    if source_gone:
                        raise PeerDead(source) from None
                    if not scheduler.block_recv(self.rank, source, tag, limit):
                        raise DeadlockError(
                            f"rank {self.rank}: no message from {source} tag {tag} "
                            f"after {limit:.1f}s"
                        ) from None
        waited = 0.0
        while msg is None:
            try:
                msg = state.router.collect(
                    self.rank, source, tag, timeout=_POLL_INTERVAL
                )
            except DeadlockError:
                waited += _POLL_INTERVAL
                with state.lock:
                    source_gone = (
                        not state.alive[source]
                        or state.finished[source]
                        or (
                            abort_check is not None
                            and state.aborted_task[source] == abort_check
                        )
                    )
                if source_gone:
                    # The source can post no further messages, but its
                    # final send may have landed between our failed poll
                    # and the flag check (sends happen-before the flags
                    # are set): drain once more before failing over.
                    try:
                        msg = state.router.collect(
                            self.rank, source, tag, timeout=0.0
                        )
                    except DeadlockError:
                        raise PeerDead(source) from None
                elif waited >= limit:
                    raise DeadlockError(
                        f"rank {self.rank}: no message from {source} tag {tag} "
                        f"after {limit:.1f}s"
                    ) from None
        sanitizer = state.sanitizer
        if sanitizer is not None:
            # The send -> matched-recv happens-before edge, at the single
            # point every delivered message passes through exactly once.
            sanitizer.on_recv_message(msg)
        recorder = state.recorder
        if recorder is not None:
            recorder.on_recv(
                self.rank, self.current_phase, msg.source, msg.tag, msg.words,
                state.topology.hops(msg.source, self.rank), self.incarnation,
                modeled=modeled, raw=raw,
            )
        return msg

    def absorb(self, msg: Message) -> Any:
        """Account for a message obtained via :meth:`recv_raw`: merge its
        clock and charge the transfer, exactly as :meth:`recv` would.
        (:meth:`recv` itself ends here, so all charged receives trace
        through one path.)"""
        self.clock.merge(msg.clock)
        hops = self._state.topology.hops(msg.source, self.rank)
        self.clock.bw += msg.words
        self.clock.l += hops
        self.ledger.charge(bw=msg.words, l=hops)
        tracer = self._state.tracer
        if tracer.enabled:
            tracer.on_recv(
                self.rank, self.current_phase, self.clock.snapshot(),
                self.incarnation, msg.source, msg.tag, msg.words,
            )
        return msg.payload

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any:
        """Combined send-then-receive (safe: sends never block)."""
        self.send(dest, payload, tag=send_tag)
        return self.recv(source, tag=send_tag if recv_tag is None else recv_tag)

    # -- sub-communicators --------------------------------------------------
    def sub(self, ranks: Sequence[int]) -> "SubCommunicator":
        """A view restricted to ``ranks`` (must include this rank)."""
        return SubCommunicator(self, list(ranks))


class SubCommunicator:
    """A rank-translated view over a parent communicator.

    ``ranks`` lists the *global* ranks of the group in group order; local
    rank ``i`` is ``ranks[i]``.  All cost/fault/memory state is the
    parent's.
    """

    def __init__(self, parent: Communicator, ranks: list[int]):
        if len(set(ranks)) != len(ranks):
            raise CommError("sub-communicator ranks must be distinct")
        if parent.rank not in ranks:
            raise CommError(
                f"rank {parent.rank} is not a member of sub-communicator {ranks}"
            )
        self.parent = parent
        self.ranks = ranks
        self.rank = ranks.index(parent.rank)
        recorder = parent._state.recorder
        if recorder is not None:
            recorder.on_sub(
                parent.rank, parent.current_phase, ranks, parent.incarnation
            )

    @property
    def size(self) -> int:
        return len(self.ranks)

    @property
    def word_bits(self) -> int:
        return self.parent.word_bits

    @property
    def memory(self) -> LocalMemory:
        return self.parent.memory

    @property
    def heap(self) -> dict[str, Any]:
        return self.parent.heap

    @property
    def clock(self) -> CostClock:
        return self.parent.clock

    @property
    def ledger(self) -> PhaseLedger:
        return self.parent.ledger

    @property
    def incarnation(self) -> int:
        return self.parent.incarnation

    def to_global(self, local_rank: int) -> int:
        return self.ranks[local_rank]

    def is_alive(self, local_rank: int) -> bool:
        return self.parent.is_alive(self.ranks[local_rank])

    def incarnation_of(self, local_rank: int) -> int:
        return self.parent.incarnation_of(self.ranks[local_rank])

    def agree_dead(self, key: Any, candidates: Sequence[int]) -> frozenset:
        globalized = self.parent.agree_dead(
            key, [self.ranks[r] for r in candidates]
        )
        return frozenset(
            r for r in range(self.size) if self.ranks[r] in globalized
        )

    def dead_ranks(self, ranks: Sequence[int] | None = None) -> set[int]:
        pool = range(self.size) if ranks is None else ranks
        return {r for r in pool if not self.is_alive(r)}

    def phase(self, name: str) -> Any:
        return self.parent.phase(name)

    def set_phase(self, name: str) -> None:
        self.parent.set_phase(name)

    @property
    def current_phase(self) -> str:
        return self.parent.current_phase

    def fault_point(self) -> None:
        self.parent.fault_point()

    def soft_fault_point(self) -> bool:
        return self.parent.soft_fault_point()

    def begin_replacement(self) -> int:
        return self.parent.begin_replacement()

    def charge_flops(self, ops: int) -> None:
        self.parent.charge_flops(ops)

    def send(self, dest: int, payload: Any, tag: int = 0, words: int | None = None) -> None:
        self.parent.send(self.ranks[dest], payload, tag=tag, words=words)

    def recv(
        self,
        source: int,
        tag: int = 0,
        timeout: float | None = None,
        abort_check: int | None = None,
    ) -> Any:
        return self.parent.recv(
            self.ranks[source], tag=tag, timeout=timeout, abort_check=abort_check
        )

    def mark_aborted(self, task: int) -> None:
        self.parent.mark_aborted(task)

    def gate(self, key: Any, participants: Sequence[int], timeout: float | None = None) -> None:
        self.parent.gate(key, [self.ranks[p] for p in participants], timeout=timeout)

    def aborted_at(self, local_rank: int) -> int:
        return self.parent.aborted_at(self.ranks[local_rank])

    def withdrawn_ranks(self, ranks: Sequence[int], task: int) -> set[int]:
        return {
            r
            for r in ranks
            if self.ranks[r] in self.parent.withdrawn_ranks(
                [self.ranks[r]], task
            )
        }

    def recv_raw(
        self,
        source: int,
        tag: int = 0,
        timeout: float | None = None,
        abort_check: int | None = None,
    ) -> Message:
        return self.parent.recv_raw(
            self.ranks[source], tag=tag, timeout=timeout, abort_check=abort_check
        )

    def absorb(self, msg: Message) -> Any:
        return self.parent.absorb(msg)

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any:
        self.send(dest, payload, tag=send_tag)
        return self.recv(source, tag=send_tag if recv_tag is None else recv_tag)

    def sub(self, ranks: Sequence[int]) -> "SubCommunicator":
        return SubCommunicator(self.parent, [self.ranks[r] for r in ranks])
