"""Communication-schedule recording (the ``commcheck`` extraction layer).

A :class:`ScheduleRecorder` shadows the :class:`~repro.machine.comm.Communicator`:
when one is installed on a :class:`~repro.machine.engine.Machine`, every
communication operation — point-to-point sends/receives, Lemma 2.5
collective transport and charges, ``gate`` / ``agree_dead`` / ``vote``
synchronization, sub-communicator creation, aborts and replacements — is
appended to a per-rank operation list in **program order**.

Program order per rank is deterministic for a fault-free run (the
algorithms draw no entropy and the thread interleaving never reorders a
single rank's own calls), so the recorded schedule for a given
``(P, k, f)`` is byte-for-byte reproducible even though the run itself is
multi-threaded.  No global interleaving order and no virtual-clock values
are recorded — only the structure the communication checker needs.

The recorder observes; it never alters costs, matching, or control flow.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Iterable

__all__ = ["ScheduleRecorder"]


def _key_repr(key: Hashable) -> str:
    """Canonical string form for gate/vote keys (tuples of str/int)."""
    return repr(key)


class ScheduleRecorder:
    """Thread-safe per-rank recorder of communication operations.

    Each operation is a plain dict (JSON-ready) with at least ``op``,
    ``phase`` and ``inc`` (the acting rank's incarnation number); the
    remaining keys depend on the operation kind:

    ``send`` / ``recv``
        ``peer``, ``tag``, ``words``, ``hops``; transport legs of modeled
        collectives carry ``modeled: True`` (their words are charged via a
        ``collective`` op instead), raw physical deliveries that are
        absorbed later carry ``raw: True``.
    ``collective``
        ``name``, ``group``, ``bw``, ``l`` — a Lemma 2.5 cost charge
        shared by every member of ``group``.
    ``gate`` / ``agree_dead`` / ``vote``
        ``key`` plus ``participants`` / ``candidates`` + ``dead`` /
        ``value`` respectively.
    ``sub``
        ``ranks`` — global ranks of a created sub-communicator.
    ``abort`` / ``replacement``
        fault-path markers (``task`` / ``purge``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: rank -> ops in that rank's program order.
        # guarded-by: _lock
        self._ops: dict[int, list[dict[str, Any]]] = {}

    # -- low-level append ---------------------------------------------------
    def _append(self, rank: int, op: dict[str, Any]) -> None:
        with self._lock:
            self._ops.setdefault(rank, []).append(op)

    # -- point-to-point -----------------------------------------------------
    def on_send(
        self,
        rank: int,
        phase: str | None,
        dest: int,
        tag: int,
        words: int,
        hops: int,
        inc: int,
        modeled: bool = False,
    ) -> None:
        op: dict[str, Any] = {
            "op": "send",
            "phase": phase,
            "peer": dest,
            "tag": tag,
            "words": words,
            "hops": hops,
            "inc": inc,
        }
        if modeled:
            op["modeled"] = True
        self._append(rank, op)

    def on_recv(
        self,
        rank: int,
        phase: str | None,
        source: int,
        tag: int,
        words: int,
        hops: int,
        inc: int,
        modeled: bool = False,
        raw: bool = False,
    ) -> None:
        op: dict[str, Any] = {
            "op": "recv",
            "phase": phase,
            "peer": source,
            "tag": tag,
            "words": words,
            "hops": hops,
            "inc": inc,
        }
        if modeled:
            op["modeled"] = True
        if raw:
            op["raw"] = True
        self._append(rank, op)

    # -- collectives --------------------------------------------------------
    def on_collective(
        self,
        rank: int,
        phase: str | None,
        name: str,
        group: Iterable[int],
        bw: int,
        l: int,
        inc: int,
    ) -> None:
        self._append(
            rank,
            {
                "op": "collective",
                "phase": phase,
                "name": name,
                "group": sorted(group),
                "bw": bw,
                "l": l,
                "inc": inc,
            },
        )

    # -- synchronization ----------------------------------------------------
    def on_gate(
        self,
        rank: int,
        phase: str | None,
        key: Hashable,
        participants: Iterable[int],
        inc: int,
    ) -> None:
        self._append(
            rank,
            {
                "op": "gate",
                "phase": phase,
                "key": _key_repr(key),
                "participants": sorted(participants),
                "inc": inc,
            },
        )

    def on_agree_dead(
        self,
        rank: int,
        phase: str | None,
        key: Hashable,
        candidates: Iterable[int],
        dead: Iterable[int],
        inc: int,
    ) -> None:
        self._append(
            rank,
            {
                "op": "agree_dead",
                "phase": phase,
                "key": _key_repr(key),
                "candidates": sorted(candidates),
                "dead": sorted(dead),
                "inc": inc,
            },
        )

    def on_vote(
        self, rank: int, phase: str | None, key: Hashable, value: Any, inc: int
    ) -> None:
        self._append(
            rank,
            {
                "op": "vote",
                "phase": phase,
                "key": _key_repr(key),
                "value": repr(value),
                "inc": inc,
            },
        )

    # -- topology / fault path ---------------------------------------------
    def on_sub(
        self, rank: int, phase: str | None, ranks: Iterable[int], inc: int
    ) -> None:
        self._append(
            rank,
            {"op": "sub", "phase": phase, "ranks": list(ranks), "inc": inc},
        )

    def on_abort(self, rank: int, phase: str | None, task: int, inc: int) -> None:
        self._append(
            rank, {"op": "abort", "phase": phase, "task": task, "inc": inc}
        )

    def on_replacement(
        self, rank: int, phase: str | None, purge: bool, inc: int
    ) -> None:
        self._append(
            rank,
            {"op": "replacement", "phase": phase, "purge": purge, "inc": inc},
        )

    # -- extraction ---------------------------------------------------------
    def ops(self) -> dict[int, list[dict[str, Any]]]:
        """Snapshot of all recorded operations, rank -> program order."""
        with self._lock:
            return {rank: [dict(op) for op in ops] for rank, ops in self._ops.items()}

    # -- process-backend transport ------------------------------------------
    def absorb(self, rank_ops: dict[int, list[dict[str, Any]]]) -> None:
        """Merge per-rank op lists recorded in another process.

        Each rank executes in exactly one process, so the merge is an
        append per rank: remote program order is preserved and never
        interleaves with ops this recorder saw for other ranks.
        """
        with self._lock:
            for rank, ops in rank_ops.items():
                self._ops.setdefault(rank, []).extend(dict(op) for op in ops)

    def __getstate__(self) -> dict[str, Any]:
        return {"ops": self.ops()}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._lock = threading.Lock()
        self._ops = {  # guarded-by: _lock
            rank: [dict(op) for op in ops] for rank, ops in state["ops"].items()
        }
