"""Hard-fault injection.

The paper's fault model (Section 2.1): upon a fault the processor ceases
operation, loses its data, and is replaced by an alternative processor.  We
inject faults deterministically with a :class:`FaultSchedule` — each
:class:`FaultEvent` names a victim rank, the algorithm *phase* in which it
dies, and the index of the machine operation within that phase at which the
fault triggers.  Rank programs hit fault points automatically on every
machine operation (send, receive, charged arithmetic), so a schedule entry
pins the failure to a reproducible spot in the execution.

:class:`RandomFaultModel` draws schedules from an exponential
mean-time-between-failures model for randomized fault campaigns.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.util.rng import DeterministicRNG

__all__ = ["FaultEvent", "FaultSchedule", "RandomFaultModel", "FaultLog"]


@dataclass(frozen=True)
class FaultEvent:
    """Kill ``rank`` at the ``op_index``-th machine op of phase ``phase``.

    ``phase`` may be ``"*"`` to match any phase.  ``incarnation`` restricts
    the event to a given incarnation of the rank (0 = original processor),
    so replacement processors are not immediately re-killed unless the
    schedule says so.

    ``kind`` selects the failure mode: ``"hard"`` (fail-stop with data
    loss — the paper's main model), ``"soft"`` (the processor
    *miscalculates*: the value computed at the matching soft-check point
    is silently corrupted; Section 7 notes the algorithm adapts to these)
    or ``"delay"`` (the paper's third category: the processor's average
    time per operation increases — every subsequent arithmetic charge on
    the victim is multiplied by ``factor``).
    """

    rank: int
    phase: str
    op_index: int = 0
    incarnation: int = 0
    kind: str = "hard"
    factor: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in ("hard", "soft", "delay"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "delay" and self.factor <= 1:
            raise ValueError("delay factor must exceed 1")


class FaultSchedule:
    """A deterministic set of fault events, consumed as ranks execute."""

    def __init__(self, events: list[FaultEvent] | None = None):
        self._lock = threading.Lock()
        self._events: list[FaultEvent] = list(events or [])  # guarded-by: _lock
        self._fired: list[FaultEvent] = []  # guarded-by: _lock

    @property
    def events(self) -> list[FaultEvent]:
        with self._lock:
            return list(self._events)

    @property
    def fired(self) -> list[FaultEvent]:
        with self._lock:
            return list(self._fired)

    def add(self, event: FaultEvent) -> None:
        with self._lock:
            self._events.append(event)

    def should_fail(
        self,
        rank: int,
        phase: str,
        op_index: int,
        incarnation: int,
        kind: str = "hard",
    ) -> bool:
        """Check (and consume) a matching fault event of ``kind``."""
        return self.take(rank, phase, op_index, incarnation, kind) is not None

    def take(
        self,
        rank: int,
        phase: str,
        op_index: int,
        incarnation: int,
        kind: str = "hard",
    ) -> FaultEvent | None:
        """Consume and return a matching fault event (None if no match)."""
        with self._lock:
            for ev in self._events:
                if (
                    ev.kind == kind
                    and ev.rank == rank
                    and ev.incarnation == incarnation
                    and (ev.phase == "*" or ev.phase == phase)
                    and ev.op_index == op_index
                ):
                    self._events.remove(ev)
                    self._fired.append(ev)
                    return ev
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class RandomFaultModel:
    """Draws fault schedules from an exponential MTBF model.

    Each rank independently fails when its operation count crosses an
    exponentially distributed threshold with mean ``mtbf_ops`` — the
    discrete analogue of a Poisson failure process over machine operations.
    ``max_faults`` caps the total number of injected faults (the paper's
    ``f``).
    """

    def __init__(self, mtbf_ops: float, rng: DeterministicRNG, max_faults: int = 1):
        if mtbf_ops <= 0:
            raise ValueError("mtbf_ops must be positive")
        if max_faults < 0:
            raise ValueError("max_faults must be non-negative")
        self.mtbf_ops = mtbf_ops
        self.max_faults = max_faults
        self._rng = rng

    def draw_schedule(self, ranks: list[int], phases: list[str]) -> FaultSchedule:
        """Sample a schedule hitting at most ``max_faults`` distinct ranks.

        Each sampled event picks a victim uniformly, a phase uniformly and
        an op index from the exponential threshold (truncated to a small
        range so the event actually lands inside the phase).
        """
        if not ranks or not phases:
            raise ValueError("ranks and phases must be non-empty")
        events: list[FaultEvent] = []
        victims: set[int] = set()
        while len(events) < self.max_faults and len(victims) < len(ranks):
            victim = self._rng.choice([r for r in ranks if r not in victims])
            victims.add(victim)
            phase = self._rng.choice(phases)
            op = int(self._rng.exponential(self.mtbf_ops)) % 8
            events.append(FaultEvent(rank=victim, phase=phase, op_index=op))
        return FaultSchedule(events)


@dataclass
class FaultLog:
    """Record of faults that actually occurred during a run.

    ``on_record`` is an optional observer called with each new entry from
    the faulting rank's own thread — the engine wires it to the tracer so
    every injected fault (hard, soft or delay) lands in the event stream
    at exactly one choke point.
    """

    @dataclass(frozen=True)
    class Entry:
        rank: int
        phase: str
        op_index: int
        incarnation: int
        kind: str = "hard"

    entries: list["FaultLog.Entry"] = field(default_factory=list)
    on_record: Any = None

    def record(
        self,
        rank: int,
        phase: str,
        op_index: int,
        incarnation: int,
        kind: str = "hard",
    ) -> None:
        entry = FaultLog.Entry(rank, phase, op_index, incarnation, kind)
        self.entries.append(entry)
        if self.on_record is not None:
            self.on_record(entry)

    def ranks(self) -> set[int]:
        return {e.rank for e in self.entries}

    def by_kind(self, kind: str) -> list["FaultLog.Entry"]:
        return [e for e in self.entries if e.kind == kind]

    def __len__(self) -> int:
        return len(self.entries)
