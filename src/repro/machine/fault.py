"""Hard-fault injection.

The paper's fault model (Section 2.1): upon a fault the processor ceases
operation, loses its data, and is replaced by an alternative processor.  We
inject faults deterministically with a :class:`FaultSchedule` — each
:class:`FaultEvent` names a victim rank, the algorithm *phase* in which it
dies, and the index of the machine operation within that phase at which the
fault triggers.  Rank programs hit fault points automatically on every
machine operation (send, receive, charged arithmetic), so a schedule entry
pins the failure to a reproducible spot in the execution.

:class:`RandomFaultModel` draws schedules from an exponential
mean-time-between-failures model for randomized fault campaigns, and
:class:`ProbingFaultSchedule` is the campaign subsystem's dry-run probe:
it records every fault point a run visits (without ever firing) so random
op indices can be sampled from the *measured* per-phase op space instead
of a guessed constant (see :mod:`repro.campaign`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.util.rng import DeterministicRNG

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "ProbingFaultSchedule",
    "RandomFaultModel",
    "FaultLog",
]


@dataclass(frozen=True)
class FaultEvent:
    """Kill ``rank`` at the ``op_index``-th machine op of phase ``phase``.

    ``phase`` may be ``"*"`` to match any phase.  ``incarnation`` restricts
    the event to a given incarnation of the rank (0 = original processor),
    so replacement processors are not immediately re-killed unless the
    schedule says so.

    ``kind`` selects the failure mode: ``"hard"`` (fail-stop with data
    loss — the paper's main model), ``"soft"`` (the processor
    *miscalculates*: the value computed at the matching soft-check point
    is silently corrupted; Section 7 notes the algorithm adapts to these)
    or ``"delay"`` (the paper's third category: the processor's average
    time per operation increases — every subsequent arithmetic charge on
    the victim is multiplied by ``factor``).
    """

    rank: int
    phase: str
    op_index: int = 0
    incarnation: int = 0
    kind: str = "hard"
    factor: float = 8.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank}")
        if self.op_index < 0:
            raise ValueError(f"op_index must be non-negative, got {self.op_index}")
        if self.incarnation < 0:
            raise ValueError(
                f"incarnation must be non-negative, got {self.incarnation}"
            )
        if self.kind not in ("hard", "soft", "delay"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "delay" and self.factor <= 1:
            raise ValueError("delay factor must exceed 1")


class FaultSchedule:
    """A deterministic set of fault events, consumed as ranks execute."""

    def __init__(self, events: list[FaultEvent] | None = None):
        self._lock = threading.Lock()
        self._events: list[FaultEvent] = list(events or [])  # guarded-by: _lock
        self._fired: list[FaultEvent] = []  # guarded-by: _lock

    @property
    def events(self) -> list[FaultEvent]:
        with self._lock:
            return list(self._events)

    @property
    def fired(self) -> list[FaultEvent]:
        with self._lock:
            return list(self._fired)

    def add(self, event: FaultEvent) -> None:
        with self._lock:
            self._events.append(event)

    def should_fail(
        self,
        rank: int,
        phase: str,
        op_index: int,
        incarnation: int,
        kind: str = "hard",
    ) -> bool:
        """Check (and consume) a matching fault event of ``kind``."""
        return self.take(rank, phase, op_index, incarnation, kind) is not None

    def take(
        self,
        rank: int,
        phase: str,
        op_index: int,
        incarnation: int,
        kind: str = "hard",
    ) -> FaultEvent | None:
        """Consume and return a matching fault event (None if no match)."""
        with self._lock:
            for ev in self._events:
                if (
                    ev.kind == kind
                    and ev.rank == rank
                    and ev.incarnation == incarnation
                    and (ev.phase == "*" or ev.phase == phase)
                    and ev.op_index == op_index
                ):
                    self._events.remove(ev)
                    self._fired.append(ev)
                    return ev
        return None

    def absorb_fired(self, fired: Sequence[FaultEvent]) -> None:
        """Reconcile fires observed in another process into this schedule.

        The process backend consumes events from per-rank *copies* of the
        schedule; the coordinator replays each copy's fired list here so
        the parent-side schedule's ``events``/``fired`` views match what a
        simulator run would show.  Events already fired (or absent) are
        skipped, making the replay idempotent.
        """
        with self._lock:
            for ev in fired:
                if ev in self._events:
                    self._events.remove(ev)
                    self._fired.append(ev)

    def __getstate__(self) -> dict[str, Any]:
        # Locks do not pickle; rank processes rebuild their own.
        with self._lock:
            return {"events": list(self._events), "fired": list(self._fired)}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._lock = threading.Lock()
        self._events = list(state["events"])  # guarded-by: _lock
        self._fired = list(state["fired"])  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __bool__(self) -> bool:
        """Always truthy: a schedule with no pending events is still a
        schedule (callers use ``schedule or FaultSchedule()`` for the
        None default, and a drained — or probing — schedule must not be
        silently swapped out by that idiom)."""
        return True


class ProbingFaultSchedule(FaultSchedule):
    """A schedule that never fires but records every fault point visited.

    Installed for a *dry probe run*, it measures the op-index space a rank
    program actually exposes: for every ``(rank, phase)`` it accumulates
    the set of op indices at which a fault event *could* have matched.
    Hard and delay events share the machine-op counter
    (:meth:`Communicator.fault_point` checks both at every op), so both
    are recorded under the ``"machine"`` domain; soft checks run on their
    own counter and land under ``"soft"``.

    :meth:`observed` returns the measured space in a deterministic order;
    :mod:`repro.campaign.probe` turns it into an :class:`~repro.campaign.probe.OpSpace`
    for guaranteed-to-land schedule sampling.
    """

    def __init__(self) -> None:
        super().__init__()
        # (rank, phase, domain) -> op indices seen at that fault point.
        self._observed: dict[tuple[int, str, str], set[int]] = {}  # guarded-by: _lock

    def take(
        self,
        rank: int,
        phase: str,
        op_index: int,
        incarnation: int,
        kind: str = "hard",
    ) -> FaultEvent | None:
        domain = "soft" if kind == "soft" else "machine"
        with self._lock:
            self._observed.setdefault((rank, phase, domain), set()).add(op_index)
        return None

    def observed(self) -> dict[tuple[int, str, str], tuple[int, ...]]:
        """Measured op space: ``(rank, phase, domain) -> sorted op tuple``."""
        with self._lock:
            return {
                key: tuple(sorted(ops))
                for key, ops in sorted(self._observed.items())
            }

    def __getstate__(self) -> dict[str, Any]:
        state = super().__getstate__()
        with self._lock:
            state["observed"] = {k: set(v) for k, v in self._observed.items()}
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        super().__setstate__(state)
        self._observed = {  # guarded-by: _lock
            k: set(v) for k, v in state["observed"].items()
        }


class RandomFaultModel:
    """Draws fault schedules from an exponential MTBF model.

    Each rank independently fails when its operation count crosses an
    exponentially distributed threshold with mean ``mtbf_ops`` — the
    discrete analogue of a Poisson failure process over machine operations.
    ``max_faults`` caps the total number of injected faults (the paper's
    ``f``).  ``default_phase_ops`` is the assumed op count per phase when
    :meth:`draw_schedule` is not given measured counts.
    """

    def __init__(
        self,
        mtbf_ops: float,
        rng: DeterministicRNG,
        max_faults: int = 1,
        default_phase_ops: int = 8,
    ):
        if mtbf_ops <= 0:
            raise ValueError("mtbf_ops must be positive")
        if max_faults < 0:
            raise ValueError("max_faults must be non-negative")
        if default_phase_ops <= 0:
            raise ValueError("default_phase_ops must be positive")
        self.mtbf_ops = mtbf_ops
        self.max_faults = max_faults
        self.default_phase_ops = default_phase_ops
        self._rng = rng

    def _phase_ops(
        self, phases: Sequence[str], op_counts: Mapping[str, int] | int | None
    ) -> list[int]:
        if op_counts is None:
            return [self.default_phase_ops] * len(phases)
        if isinstance(op_counts, int):
            if op_counts <= 0:
                raise ValueError("op_counts must be positive")
            return [op_counts] * len(phases)
        counts = []
        for phase in phases:
            count = op_counts.get(phase, self.default_phase_ops)
            if count <= 0:
                raise ValueError(f"op count for phase {phase!r} must be positive")
            counts.append(count)
        return counts

    def draw_schedule(
        self,
        ranks: list[int],
        phases: list[str],
        op_counts: Mapping[str, int] | int | None = None,
    ) -> FaultSchedule:
        """Sample a schedule hitting at most ``max_faults`` distinct ranks.

        Each candidate victim draws an exponential failure threshold
        ``T ~ Exp(mtbf_ops)`` — the machine-op count at which it dies —
        and the op is located by walking ``phases`` in order against their
        op counts (``op_counts``: a per-phase mapping, one count for all
        phases, or None for ``default_phase_ops``).  A threshold beyond
        the total op budget means the victim survives the run (the tail of
        the exponential), so fewer than ``max_faults`` events may be
        returned; the distribution of op indices is the exponential
        restricted to the run, not a wrapped-around artefact.
        """
        if not ranks or not phases:
            raise ValueError("ranks and phases must be non-empty")
        counts = self._phase_ops(phases, op_counts)
        total = sum(counts)
        events: list[FaultEvent] = []
        victims: set[int] = set()
        while len(events) < self.max_faults and len(victims) < len(ranks):
            victim = self._rng.choice([r for r in ranks if r not in victims])
            victims.add(victim)
            threshold = int(self._rng.exponential(self.mtbf_ops))
            if threshold >= total:
                continue  # this rank outlives the run
            cumulative = 0
            for phase, count in zip(phases, counts):
                if threshold < cumulative + count:
                    events.append(
                        FaultEvent(
                            rank=victim, phase=phase, op_index=threshold - cumulative
                        )
                    )
                    break
                cumulative += count
        return FaultSchedule(events)


class FaultLog:
    """Record of faults that actually occurred during a run.

    ``on_record`` is an optional observer called with each new entry from
    the faulting rank's own thread — the engine wires it to the tracer so
    every injected fault (hard, soft or delay) lands in the event stream
    at exactly one choke point.  Ranks record concurrently, so the entry
    list is lock-guarded; ``on_record`` itself is invoked outside the lock
    (the tracer takes its own) and must be set before the run starts.
    """

    @dataclass(frozen=True)
    class Entry:
        rank: int
        phase: str
        op_index: int
        incarnation: int
        kind: str = "hard"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[FaultLog.Entry] = []  # guarded-by: _lock
        self.on_record: Any = None

    @property
    def entries(self) -> list["FaultLog.Entry"]:
        with self._lock:
            return list(self._entries)

    def record(
        self,
        rank: int,
        phase: str,
        op_index: int,
        incarnation: int,
        kind: str = "hard",
    ) -> None:
        entry = FaultLog.Entry(rank, phase, op_index, incarnation, kind)
        with self._lock:
            self._entries.append(entry)
        if self.on_record is not None:
            self.on_record(entry)

    def ranks(self) -> set[int]:
        with self._lock:
            return {e.rank for e in self._entries}

    def by_kind(self, kind: str) -> list["FaultLog.Entry"]:
        with self._lock:
            return [e for e in self._entries if e.kind == kind]

    def absorb(self, entries: Sequence["FaultLog.Entry"]) -> None:
        """Append entries recorded in another process (coordinator merge).

        Observers are *not* re-fired: a remote rank already traced the
        fault locally, and the parent-side tracer (if any) never saw the
        rank's thread, so replaying through ``on_record`` would fabricate
        events.
        """
        with self._lock:
            self._entries.extend(entries)

    def __getstate__(self) -> dict[str, Any]:
        # Locks and the tracer observer do not cross process boundaries;
        # rank-side logs record locally and the coordinator absorbs them.
        with self._lock:
            return {"entries": list(self._entries)}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._lock = threading.Lock()
        self._entries = list(state["entries"])  # guarded-by: _lock
        self.on_record = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
