"""Fault-Tolerant Parallel Integer Multiplication — full reproduction.

Reproduces Nissim, Schwartz & Spiizer, *Fault-Tolerant Parallel Integer
Multiplication* (SPAA 2024): parallel Toom-Cook-k via the BFS-DFS
technique, made tolerant to ``f`` hard faults with ``(1+o(1))`` overhead
by combining a Vandermonde column code (evaluation/interpolation phases)
with a polynomial code of redundant evaluation points (multiplication
phase).

Quick start::

    import repro

    # Sequential Toom-Cook-3
    assert repro.multiply(2**500 - 1, 2**499 + 7, k=3) == (2**500 - 1) * (2**499 + 7)

    # Parallel, on a simulated 9-processor machine, with one injected fault
    from repro.machine.fault import FaultSchedule, FaultEvent
    out = repro.multiply_fault_tolerant(
        10**120 + 7, 10**119 + 3, p=9, k=2, f=1,
        fault_schedule=FaultSchedule([FaultEvent(rank=4, phase="multiplication", op_index=0)]),
    )
    assert out.product == (10**120 + 7) * (10**119 + 3)
    print(out.run.critical_path)   # F/BW/L along the critical path

Subpackages: :mod:`repro.machine` (the simulated distributed-memory
machine), :mod:`repro.bigint` (sequential long-integer algorithms),
:mod:`repro.coding` (erasure codes and general-position point search),
:mod:`repro.core` (the paper's parallel and fault-tolerant algorithms),
:mod:`repro.analysis` (cost formulas and paper-table reporting).
"""

from repro.core.api import (
    multiply,
    multiply_parallel,
    multiply_fault_tolerant,
    multiply_replicated,
    multiply_checkpointed,
    multiply_multistep,
    multiply_soft_tolerant,
)
from repro.core.plan import ExecutionPlan, make_plan
from repro.core.parallel_toomcook import MultiplyOutcome, ParallelToomCook
from repro.core.ft_toomcook import FaultTolerantToomCook
from repro.core.ft_polynomial import PolynomialCodedToomCook
from repro.core.multistep import MultiStepToomCook
from repro.core.soft_faults import SoftTolerantToomCook, SoftFaultDetected
from repro.core.replication import ReplicatedToomCook
from repro.core.checkpoint import CheckpointedToomCook

__version__ = "1.0.0"

__all__ = [
    "multiply",
    "multiply_parallel",
    "multiply_fault_tolerant",
    "multiply_replicated",
    "multiply_checkpointed",
    "multiply_multistep",
    "multiply_soft_tolerant",
    "ExecutionPlan",
    "make_plan",
    "MultiplyOutcome",
    "ParallelToomCook",
    "FaultTolerantToomCook",
    "PolynomialCodedToomCook",
    "MultiStepToomCook",
    "SoftTolerantToomCook",
    "SoftFaultDetected",
    "ReplicatedToomCook",
    "CheckpointedToomCook",
    "__version__",
]
