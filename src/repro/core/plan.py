"""BFS/DFS execution plans (paper Section 3, Lemma 3.1).

The parallel traversal performs exactly ``l_bfs = log_(2k-1) P`` BFS steps;
when local memory is limited it must *first* perform

    ``l_dfs = ceil( log_k ( n / (P^(log_(2k-1) k) * M) ) )``

DFS steps (Lemma 3.1; DFS-before-BFS is optimal per Ballard et al.).  An
:class:`ExecutionPlan` fixes ``k``, ``P``, the padded word count, and the
level schedule; it is pure data shared by every rank (the traversal is
oblivious, so no coordination is needed to follow it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive, ilog, is_power_of

__all__ = ["ExecutionPlan", "make_plan", "min_dfs_steps", "bfs_memory_blowup"]


def min_dfs_steps(n_words: int, p: int, m_words: float, k: int) -> int:
    """Lemma 3.1: the minimum number of DFS steps to fit memory ``M``.

    Zero when ``M = Omega(n / P^(log_(2k-1) k))`` (the unlimited-memory
    regime of Table 1).
    """
    check_positive("n_words", n_words)
    check_positive("p", p)
    if k < 2:
        raise ValueError("k must be >= 2")
    if m_words <= 0:
        raise ValueError("m_words must be positive")
    if math.isinf(m_words):
        return 0
    q = 2 * k - 1
    # n / P^(log_q k) = n / k^(log_q P)
    log_q_p = math.log(p, q)
    footprint = n_words / (k**log_q_p)
    if footprint <= m_words:
        return 0
    return math.ceil(math.log(footprint / m_words, k))


def bfs_memory_blowup(p: int, k: int) -> float:
    """The factor ``((2k-1)/k)^(log_(2k-1) P) = P^(1 - log_(2k-1) k)`` by
    which the pure-BFS traversal inflates the per-processor footprint
    (Lemma 3.1's proof)."""
    check_positive("p", p)
    if k < 2:
        raise ValueError("k must be >= 2")
    q = 2 * k - 1
    return ((q / k)) ** math.log(p, q)


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully determined parallel Toom-Cook schedule.

    Attributes
    ----------
    k, p:
        Split factor and standard processor count (``p`` a power of
        ``2k-1``).
    word_bits:
        Machine word width (digits are single words).
    n_words:
        Padded input length in words: a multiple of ``p * k**levels``.
    l_dfs, l_bfs:
        DFS and BFS step counts; levels ``0..l_dfs-1`` are DFS, the rest
        BFS.  ``l_bfs == log_(2k-1) p`` always.
    """

    k: int
    p: int
    word_bits: int
    n_words: int
    l_dfs: int
    l_bfs: int

    @property
    def q(self) -> int:
        """Sub-problem fan-out ``2k-1``."""
        return 2 * self.k - 1

    @property
    def levels(self) -> int:
        """Total parallel recursion depth."""
        return self.l_dfs + self.l_bfs

    @property
    def local_words(self) -> int:
        """Initial words per processor (``n_words / p``)."""
        return self.n_words // self.p

    def is_bfs_level(self, level: int) -> bool:
        if not (0 <= level < self.levels):
            raise ValueError(f"level {level} out of range [0, {self.levels})")
        return level >= self.l_dfs

    def group_size(self, level: int) -> int:
        """Processors per sub-problem group entering ``level``."""
        if not (0 <= level <= self.levels):
            raise ValueError(f"level {level} out of range")
        bfs_done = max(0, level - self.l_dfs)
        return self.p // self.q**bfs_done

    def words_at_level(self, level: int) -> int:
        """Sub-problem operand length in words entering ``level``."""
        if not (0 <= level <= self.levels):
            raise ValueError(f"level {level} out of range")
        return self.n_words // self.k**level

    def leaf_words(self) -> int:
        """Operand words of a leaf task (one processor)."""
        return self.n_words // self.k**self.levels


def make_plan(
    n_bits: int,
    p: int,
    k: int,
    word_bits: int = 64,
    m_words: float = math.inf,
    extra_dfs: int = 0,
) -> ExecutionPlan:
    """Build a plan for ``n_bits``-bit operands on ``p`` processors.

    ``p`` must be a power of ``2k-1``.  The input is padded up to the
    smallest word count divisible by ``p * k**levels`` (the paper's
    power-of-``k`` / power-of-``2k-1`` padding assumption).  ``extra_dfs``
    forces additional DFS steps beyond Lemma 3.1's minimum (for
    experiments).
    """
    check_positive("n_bits", n_bits)
    check_positive("p", p)
    check_positive("word_bits", word_bits)
    if k < 2:
        raise ValueError("k must be >= 2")
    if extra_dfs < 0:
        raise ValueError("extra_dfs must be non-negative")
    q = 2 * k - 1
    if not is_power_of(p, q):
        raise ValueError(f"p={p} must be a power of 2k-1={q}")
    l_bfs = ilog(p, q)
    n_words_raw = max(1, -(-n_bits // word_bits))
    l_dfs = min_dfs_steps(n_words_raw, p, m_words, k) + extra_dfs
    levels = l_dfs + l_bfs
    unit = p * k**levels
    n_words = unit * max(1, -(-n_words_raw // unit))
    return ExecutionPlan(
        k=k, p=p, word_bits=word_bits, n_words=n_words, l_dfs=l_dfs, l_bfs=l_bfs
    )
