"""Parallel Toom-Cook-k (paper Section 3).

The BFS-DFS traversal over the simulated machine:

- **DFS levels** (first ``l_dfs``, Lemma 3.1): all processors of the
  current group walk the ``2k-1`` sub-problems *sequentially*; evaluation
  and interpolation are purely local (the cyclic layout aligns block
  slices), so DFS steps cost no communication.
- **BFS levels** (the last ``log_(2k-1) P``): the group's evaluated
  sub-problem slices repartition onto ``2k-1`` disjoint sub-groups — each
  rank exchanges with a fixed set of ``2k-1`` peers (the grid "row"), then
  recursion continues independently per column.  The mirrored exchange
  happens on the way up, followed by local interpolation (``W^T``) and
  overlap-add.
- **Leaves**: one rank holds one sub-problem outright and multiplies it
  with the sequential lazy algorithm (Algorithm 2), continuing the same
  recursion to word granularity.

The product is returned in *distributed lazy-digit form* (each rank holds
the cyclic slice of the 2n-word product polynomial, carries unresolved);
:meth:`ParallelToomCook.multiply` assembles and resolves carries outside
the machine for verification — the paper's cost analysis likewise does not
charge a parallel carry stage (its output is distributed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.bigint.blockops import apply_matrix_to_blocks, matrix_apply_flops
from repro.bigint.evalpoints import EvalPoint, toom_points
from repro.bigint.lazy import LazyToomCook
from repro.bigint.limbs import LimbVector
from repro.bigint.matrices import toom_operators
from repro.core.layout import CyclicLayout, cyclic_deinterleave, cyclic_merge
from repro.core.plan import ExecutionPlan
from repro.machine.engine import Machine, RunResult
from repro.machine.fault import FaultSchedule
from repro.machine.grid import ProcessorGrid

# Re-exported from the tag registry: the traversal subclasses
# (ft_polynomial, ft_toomcook, soft_faults, multistep) import them here.
from repro.machine.tags import TAG_BFS_DOWN, TAG_BFS_UP
from repro.util.words import int_to_digits

__all__ = ["ParallelToomCook", "MultiplyOutcome", "TAG_BFS_DOWN", "TAG_BFS_UP"]


@dataclass
class MultiplyOutcome:
    """Product plus the machine-level evidence of how it was computed."""

    product: int
    run: RunResult
    plan: ExecutionPlan


class ParallelToomCook:
    """Parallel Toom-Cook-k on a simulated ``P``-processor machine.

    Parameters
    ----------
    plan:
        The BFS/DFS schedule (see :func:`repro.core.plan.make_plan`).
    points:
        Optional custom evaluation points (``>= 2k-1``); the polynomial-
        coded subclass passes the extended set here.
    memory_words:
        Per-processor capacity ``M`` enforced by the machine
        (``math.inf`` = unlimited).
    trace:
        Observability switch forwarded to ``Machine(trace=...)`` — a
        :class:`~repro.obs.tracer.Tracer`, ``True`` or a
        :class:`~repro.machine.costs.CostModel` (None = no tracing).
    """

    #: Default for subclasses whose __init__ predates the trace parameter;
    #: callers can also set ``algo.trace = tracer`` after construction.
    trace = None
    #: Schedule-extraction mode (commcheck): set ``algo.recorder`` to a
    #: :class:`~repro.machine.record.ScheduleRecorder` before ``multiply``
    #: and the run's communication graph is captured without altering it.
    recorder = None

    def __init__(
        self,
        plan: ExecutionPlan,
        points: Sequence[EvalPoint] | None = None,
        memory_words: float = math.inf,
        fault_schedule: FaultSchedule | None = None,
        timeout: float = 60.0,
        topology=None,
        trace=None,
    ):
        self.plan = plan
        self.topology = topology
        if trace is not None:
            self.trace = trace
        self.points = list(points) if points else toom_points(plan.k)
        self.U, self.V, self.W_T = toom_operators(plan.k, self.points)
        self.grid = ProcessorGrid(plan.p, plan.q)
        self.memory_words = memory_words
        self.fault_schedule = fault_schedule
        self.timeout = timeout
        self._leaf = LazyToomCook(plan.k, threshold_bits=plan.word_bits)

    # -- machine construction ------------------------------------------------
    def machine_size(self) -> int:
        """Total processors (standard only for the base algorithm)."""
        return self.plan.p

    def _make_machine(self) -> Machine:
        return Machine(
            self.machine_size(),
            memory_words=self.memory_words,
            word_bits=self.plan.word_bits,
            fault_schedule=self.fault_schedule or FaultSchedule(),
            timeout=self.timeout,
            topology=self.topology,
            trace=self.trace,
            recorder=self.recorder,
        )

    # -- public ---------------------------------------------------------------
    def multiply(self, a: int, b: int, raise_on_error: bool = True) -> MultiplyOutcome:
        """Run the parallel machine and return the verified product."""
        sign = -1 if (a < 0) != (b < 0) else 1
        a, b = abs(a), abs(b)
        plan = self.plan
        if max(a, b).bit_length() > plan.n_words * plan.word_bits:
            raise ValueError("operands exceed the plan's padded size")
        layout = CyclicLayout(plan.p)
        va = LimbVector(int_to_digits(a, plan.word_bits, count=plan.n_words), plan.word_bits)
        vb = LimbVector(int_to_digits(b, plan.word_bits, count=plan.n_words), plan.word_bits)
        slices_a = layout.distribute(va)
        slices_b = layout.distribute(vb)
        rank_args = self._rank_args(slices_a, slices_b)
        machine = self._make_machine()
        run = machine.run(self._rank_main, rank_args=rank_args, raise_on_error=raise_on_error)
        product = 0
        if run.ok:
            product = sign * self._assemble(run.results)
        return MultiplyOutcome(product=product, run=run, plan=plan)

    def _rank_args(self, slices_a, slices_b) -> list[tuple]:
        return [(slices_a[r], slices_b[r]) for r in range(self.plan.p)]

    def _assemble(self, results: list[Any]) -> int:
        """Collect distributed result slices and resolve carries."""
        slices = results[: self.plan.p]
        layout = CyclicLayout(self.plan.p)
        return layout.collect(slices).to_int()

    # -- rank program -----------------------------------------------------------
    def _rank_main(self, comm, va: LimbVector, vb: LimbVector) -> LimbVector:
        comm.memory.allocate("operands", va.words(comm.word_bits) + vb.words(comm.word_bits))
        group = list(range(self.plan.p))
        result = self._level(comm, group, va, vb, level=0, ctx={})
        comm.memory.free("operands")
        return result

    def _level(
        self,
        comm,
        group: list[int],
        va: LimbVector,
        vb: LimbVector,
        level: int,
        ctx: dict,
    ) -> LimbVector:
        """One traversal level.  ``ctx`` carries fault-tolerance context:
        ``task`` (DFS task index, scoping message tags and abort checks)
        and ``guard`` (a callable raising when this rank's polynomial-code
        column has been killed — Section 4.2 column halt)."""
        plan = self.plan
        if level == plan.levels:
            return self._leaf_multiply(comm, va, vb, ctx)
        if plan.is_bfs_level(level):
            return self._bfs_level(comm, group, va, vb, level, ctx)
        return self._dfs_level(comm, group, va, vb, level, ctx)

    @staticmethod
    def _guard(comm, ctx: dict) -> None:
        guard = ctx.get("guard")
        if guard is not None:
            guard(comm)

    @staticmethod
    def _tag(base: int, step: int, ctx: dict) -> int:
        """Message tag scoped by BFS step and the fault-tolerance *scope*
        (task/attempt id) so that aborted attempts' stale messages can
        never be mismatched."""
        scope = ctx.get("scope", 0)
        if 64 * scope + step >= 100_000:  # pragma: no cover - absurd sizes
            raise ValueError("tag space exhausted")
        return base + step + 64 * scope

    # -- DFS ---------------------------------------------------------------------
    def _dfs_level(
        self,
        comm,
        group: list[int],
        va: LimbVector,
        vb: LimbVector,
        level: int,
        ctx: dict,
    ) -> LimbVector:
        """Sequential walk over the 2k-1 sub-problems; no communication."""
        k, q = self.plan.k, self.plan.q
        blocks_a = va.split_blocks(k)
        blocks_b = vb.split_blocks(k)
        child_len = len(va) // k
        results: list[LimbVector] = []
        for i in range(q):
            self._guard(comm, ctx)
            with comm.phase("evaluation"):
                ta = apply_matrix_to_blocks([self.U.rows[i]], blocks_a)[0]
                tb = apply_matrix_to_blocks([self.V.rows[i]], blocks_b)[0]
                comm.charge_flops(2 * matrix_apply_flops([self.U.rows[i]], child_len))
                comm.memory.allocate(f"dfs{level}.child", 2 * ta.words(comm.word_bits))
            results.append(self._level(comm, group, ta, tb, level + 1, ctx))
        comm.memory.free(f"dfs{level}.child")
        with comm.phase("interpolation"):
            out = self._interpolate_and_overlap(comm, results, child_len)
        comm.memory.allocate(f"dfs{level}.result", out.words(comm.word_bits))
        comm.memory.free(f"dfs{level}.result")
        return out

    # -- BFS -------------------------------------------------------------------
    def _bfs_level(
        self,
        comm,
        group: list[int],
        va: LimbVector,
        vb: LimbVector,
        level: int,
        ctx: dict,
    ) -> LimbVector:
        plan = self.plan
        step = level - plan.l_dfs  # BFS step index (grid digit)
        self._guard(comm, ctx)
        with comm.phase("evaluation"):
            evals_a = apply_matrix_to_blocks(self.U.rows, va.split_blocks(plan.k))
            evals_b = apply_matrix_to_blocks(self.V.rows, vb.split_blocks(plan.k))
            comm.charge_flops(2 * matrix_apply_flops(self.U.rows, len(va) // plan.k))
            payload = list(zip(evals_a, evals_b))
            comm.memory.allocate(
                f"bfs{step}.evals",
                sum(x.words(comm.word_bits) + y.words(comm.word_bits) for x, y in payload),
            )
            new_group, parts = self._exchange_down(comm, group, payload, step, ctx)
            ta = cyclic_merge([p[0] for p in parts])
            tb = cyclic_merge([p[1] for p in parts])
            comm.memory.free(f"bfs{step}.evals")
            comm.memory.allocate(
                f"bfs{step}.sub", ta.words(comm.word_bits) + tb.words(comm.word_bits)
            )
        sub_result = self._level(comm, new_group, ta, tb, level + 1, ctx)
        comm.memory.free(f"bfs{step}.sub")
        with comm.phase("interpolation"):
            self._guard(comm, ctx)
            result_blocks = self._exchange_up(
                comm, group, new_group, sub_result, step, ctx
            )
            out = self._interpolate_and_overlap(comm, result_blocks, len(va) // plan.k)
        return out

    # -- exchanges ----------------------------------------------------------------
    def _columns(self, comm, group: list[int], step: int) -> tuple[list[list[int]], int]:
        """Partition the class-ordered group into per-column member lists
        (contiguous class blocks), and this rank's column index.

        With class-block columns a rank's send targets and receive sources
        at a BFS step are the same fixed set of ``2k-1`` ranks — the grid
        "row" of Section 3 (the ranks sharing ``class mod g'``)."""
        q = self.plan.q
        g2 = len(group) // q
        columns = [group[j * g2 : (j + 1) * g2] for j in range(q)]
        my_col = group.index(comm.rank) // g2
        return columns, my_col

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _exchange_down(
        self, comm, group: list[int], payload: list, step: int, ctx: dict
    ) -> tuple[list[int], list]:
        """Repartition: my slice of evaluated sub-problem ``j`` goes to the
        class-``(my_class mod g')`` member of column ``j``.  Returns the new
        group (class-ordered) and my ``q`` received parts, interleave-ready."""
        q = self.plan.q
        g = len(group)
        g2 = g // q
        my_class = group.index(comm.rank)
        columns, my_col = self._columns(comm, group, step)
        kept: dict[int, Any] = {}
        for j in range(q):
            target = columns[j][my_class % g2]
            if target == comm.rank:
                kept[j] = payload[j]
            else:
                comm.send(target, payload[j], tag=self._tag(TAG_BFS_DOWN, step, ctx))
        new_group = columns[my_col]
        my_new_class = new_group.index(comm.rank)
        parts = []
        for jp in range(q):
            src = group[my_new_class + jp * g2]
            if src == comm.rank:
                parts.append(kept[my_col])
            else:
                parts.append(
                    comm.recv(
                        src,
                        tag=self._tag(TAG_BFS_DOWN, step, ctx),
                        abort_check=ctx.get("scope"),
                    )
                )
        return new_group, parts

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _exchange_up(
        self,
        comm,
        group: list[int],
        new_group: list[int],
        result: LimbVector,
        step: int,
        ctx: dict,
    ) -> list[LimbVector]:
        """Inverse repartition: deinterleave my column's result slice back to
        the parent classes; receive my slice of every column's result."""
        q = self.plan.q
        g = len(group)
        g2 = g // q
        my_class = group.index(comm.rank)
        my_new_class = new_group.index(comm.rank)
        columns, my_col = self._columns(comm, group, step)
        parts = cyclic_deinterleave(result, q)
        kept: LimbVector | None = None
        for jp in range(q):
            target = group[my_new_class + jp * g2]
            if target == comm.rank:
                kept = parts[jp]
            else:
                comm.send(target, parts[jp], tag=self._tag(TAG_BFS_UP, step, ctx))
        out: list[LimbVector] = []
        for j in range(q):
            src = columns[j][my_class % g2]
            if src == comm.rank:
                assert kept is not None
                out.append(kept)
            else:
                out.append(
                    comm.recv(
                        src,
                        tag=self._tag(TAG_BFS_UP, step, ctx),
                        abort_check=ctx.get("scope"),
                    )
                )
        return out

    # -- local math ------------------------------------------------------------------
    # repro-lint: in-phase -- runs inside the caller's phase context
    def _interpolate_and_overlap(
        self, comm, result_blocks: list[LimbVector], child_offset: int
    ) -> LimbVector:
        """Apply ``W^T`` blockwise, then overlap-add child blocks at local
        offsets ``j * child_offset`` (``child_offset`` = local words of an
        unpadded child block)."""
        k = self.plan.k
        coeffs = apply_matrix_to_blocks(self.W_T.rows, result_blocks)
        comm.charge_flops(matrix_apply_flops(self.W_T.rows, len(result_blocks[0])))
        out = [0] * (2 * k * child_offset)
        for m, block in enumerate(coeffs):
            off = m * child_offset
            for t, v in enumerate(block):
                out[off + t] += v
        comm.charge_flops(len(coeffs) * len(coeffs[0]))
        return LimbVector(out, result_blocks[0].base_bits)

    def _leaf_multiply(
        self, comm, va: LimbVector, vb: LimbVector, ctx: dict
    ) -> LimbVector:
        """Sequential lazy Toom on the leaf (padded up to a power of k),
        truncated to the exact product-polynomial length and padded to
        ``2 * len(va)`` for the ascent's cyclic layout."""
        self._guard(comm, ctx)
        with comm.phase("multiplication"):
            k = self.plan.k
            width = len(va)
            padded = 1
            depth = 0
            while padded < width:
                padded *= k
                depth += 1
            pa = va.pad_to(padded)
            pb = vb.pad_to(padded)
            prod, flops = self._leaf.multiply_blocks(pa, pb, depth)
            comm.charge_flops(flops)
            comm.memory.allocate("leaf.product", prod.words(comm.word_bits))
            out = prod.take(0, 2 * width - 1).pad_to(2 * width)
            comm.memory.free("leaf.product")
            return out
