"""Checkpoint-restart baseline (the other general-purpose alternative the
paper's introduction contrasts against).

Classic diskless checkpointing with global rollback: every processor
replicates its input state to ``f`` buddies up front (degree-``f``
neighbour checkpointing — any state survives ``f`` faults because the
owner plus ``f`` holders can lose at most ``f`` members), and any hard
fault aborts the *whole* multiplication, which restarts from the
checkpoint after the replacement processor has fetched its state from a
surviving holder.

The measured contrast with the paper's algorithm is the point of this
module: CR pays a full recomputation of everything done since the
checkpoint on every fault, where fault-tolerant Toom-Cook pays nothing in
the multiplication phase and one ``O(f*M)`` reduce elsewhere.
"""

from __future__ import annotations

import math
from typing import Any

from repro.bigint.limbs import LimbVector
from repro.core.ft_polynomial import FaultToleranceExceeded
from repro.core.parallel_toomcook import ParallelToomCook
from repro.core.plan import ExecutionPlan
from repro.machine.errors import HardFault, MachineError
from repro.machine.fault import FaultSchedule

__all__ = ["CheckpointedToomCook"]

# Re-exported from the tag registry for existing importers.
from repro.machine.tags import TAG_CKPT, TAG_CKPT_RESTORE  # noqa: E402

MAX_RESTARTS = 16


class CheckpointedToomCook(ParallelToomCook):
    """Parallel Toom-Cook under global checkpoint-restart."""

    def __init__(
        self,
        plan: ExecutionPlan,
        f: int,
        memory_words: float = math.inf,
        fault_schedule: FaultSchedule | None = None,
        timeout: float = 60.0,
    ):
        if f < 1:
            raise ValueError("f must be at least 1")
        super().__init__(
            plan,
            memory_words=memory_words,
            fault_schedule=fault_schedule,
            timeout=timeout,
        )
        self.f = f

    def holders(self, rank: int) -> list[int]:
        """The ``f`` neighbours storing ``rank``'s checkpoint."""
        return [(rank + i) % self.plan.p for i in range(1, self.f + 1)]

    # -- rank program ------------------------------------------------------------
    def _rank_main(self, comm, va: LimbVector, vb: LimbVector):
        p = self.plan.p
        all_ranks = list(range(p))
        # Checkpoint phase: replicate my state to f buddies; hold theirs.
        with comm.phase("checkpoint"):
            for h in self.holders(comm.rank):
                comm.send(h, (va, vb), tag=TAG_CKPT)
            held: dict[int, tuple] = {}
            for owner in sorted(
                r for r in all_ranks if comm.rank in self.holders(r)
            ):
                held[owner] = comm.recv(owner, tag=TAG_CKPT)
            comm.memory.allocate(
                "checkpoints",
                sum(
                    s[0].words(comm.word_bits) + s[1].words(comm.word_bits)
                    for s in held.values()
                ),
            )
        dead_ever: set[int] = set()
        attempt = 0
        while True:
            lost = False
            result: LimbVector | None = None
            try:
                result = self._level(
                    comm, all_ranks, va, vb, 0, {"scope": attempt}
                )
            except HardFault:
                va = vb = None
                held.clear()  # a hard fault loses the held copies too
                lost = True
            except MachineError:
                # A peer died: abandon this attempt (and say so, so peers
                # blocked on us fail fast into their own restart path).
                comm.mark_aborted(attempt)
                result = None
            if not lost:
                comm.vote(("ckpt-vote", attempt), result is not None)
            comm.gate(("ckpt-gate", attempt), all_ranks)
            dead = comm.agree_dead(("ckpt-dead", attempt), all_ranks)
            if lost:
                comm.begin_replacement(purge=False)
            dead_ever |= dead
            votes = comm.poll_votes(("ckpt-vote", attempt))
            success = bool(votes) and all(votes.values())
            if dead:
                va, vb, held = self._restore(
                    comm, attempt, dead, dead_ever, va, vb, held, lost
                )
            if success:
                return result
            attempt += 1
            if attempt >= MAX_RESTARTS:
                raise FaultToleranceExceeded(
                    f"{attempt} consecutive restarts failed"
                )

    def _restore(self, comm, attempt, dead, dead_ever, va, vb, held, lost):
        """Ship checkpoints to replacements (rollback recovery).

        The first holder that has never died sends; holders that were ever
        replaced lost their copies (heap wipe) and are skipped by every
        rank consistently (``dead_ever`` accumulates agreed failures).
        """
        with comm.phase("recovery"):
            for d in sorted(r for r in dead if r < self.plan.p):
                candidates = [
                    h for h in self.holders(d) if h not in dead_ever
                ]
                if not candidates:
                    raise MachineError(
                        f"rank {d}'s checkpoint lost on every holder "
                        f"(more than f={self.f} cumulative faults)"
                    )
                sender = candidates[0]
                if comm.rank == sender:
                    comm.send(d, held[d], tag=TAG_CKPT_RESTORE + attempt)
                if comm.rank == d:
                    # Bounded wait (COMM003): the sender may die before its
                    # restore send, so the replacement must not block past
                    # the deadlock budget waiting for a checkpoint that
                    # will never arrive.
                    va, vb = comm.recv(
                        sender,
                        tag=TAG_CKPT_RESTORE + attempt,
                        timeout=self.timeout,
                    )
        return va, vb, held

    def _assemble(self, results: list[Any]) -> int:
        from repro.core.layout import CyclicLayout

        slices = results[: self.plan.p]
        if any(s is None for s in slices):
            raise MachineError("checkpoint-restart run did not converge")
        return CyclicLayout(self.plan.p).collect(slices).to_int()
