"""The cyclic word layout of Section 3 and its repartition maps.

Operand vectors are distributed over a processor group at single-word
granularity: the rank with *class* ``c`` (its index in the group's
class-ordered member list) holds the words at positions ``u ≡ c (mod g)``.
Because every level's block length is divisible by every group size (the
plan pads inputs to a multiple of ``P * k**levels``), this cyclic layout
has the property the paper's block-cyclic layout is chosen for: **all
evaluation and interpolation arithmetic is local**, and the only
communication is the per-BFS-step repartition within fixed ``2k-1``-rank
target sets (the grid "rows").

The repartition maps are pure index shuffles:

- descending, the new class-``c'`` member of column ``j`` receives the
  eval-``j`` slices of the ``q`` old classes ``{c : c ≡ c' (mod g')}`` and
  *interleaves* them (``merged[p] = parts[p mod q][p // q]``);
- ascending, a result slice *deinterleaves* into ``q`` parts, part ``jp``
  going back to old class ``c' + jp*g'``.
"""

from __future__ import annotations

from repro.bigint.limbs import LimbVector

__all__ = ["CyclicLayout", "cyclic_slice", "cyclic_merge", "cyclic_deinterleave"]


def cyclic_slice(vector: LimbVector, cls: int, g: int) -> LimbVector:
    """The class-``cls`` slice of ``vector`` over a group of size ``g``:
    positions ``u ≡ cls (mod g)``."""
    if not (0 <= cls < g):
        raise ValueError(f"class {cls} out of range for group size {g}")
    if len(vector) % g:
        raise ValueError(f"vector length {len(vector)} not divisible by {g}")
    return LimbVector(vector.limbs[cls::g], vector.base_bits)


def cyclic_merge(parts: list[LimbVector]) -> LimbVector:
    """Interleave ``q`` equally long parts: ``out[p] = parts[p % q][p // q]``."""
    if not parts:
        raise ValueError("cyclic_merge of no parts")
    q = len(parts)
    m = len(parts[0])
    base_bits = parts[0].base_bits
    if any(len(p) != m or p.base_bits != base_bits for p in parts):
        raise ValueError("parts must have equal length and radix")
    out = [0] * (q * m)
    for j, part in enumerate(parts):
        out[j::q] = part.limbs
    return LimbVector(out, base_bits)


def cyclic_deinterleave(vector: LimbVector, q: int) -> list[LimbVector]:
    """Inverse of :func:`cyclic_merge`: part ``jp`` holds positions
    ``p ≡ jp (mod q)``."""
    if q <= 0 or len(vector) % q:
        raise ValueError(f"cannot deinterleave length {len(vector)} into {q} parts")
    return [LimbVector(vector.limbs[j::q], vector.base_bits) for j in range(q)]


class CyclicLayout:
    """Distribution and collection of full vectors (used at the run
    boundary: distributing padded inputs, assembling the output)."""

    def __init__(self, p: int):
        if p <= 0:
            raise ValueError("p must be positive")
        self.p = p

    def distribute(self, vector: LimbVector) -> list[LimbVector]:
        """Per-rank slices of ``vector`` (rank = class initially)."""
        return [cyclic_slice(vector, c, self.p) for c in range(self.p)]

    def collect(self, slices: list[LimbVector]) -> LimbVector:
        """Reassemble the full vector from per-class slices."""
        if len(slices) != self.p:
            raise ValueError(f"expected {self.p} slices, got {len(slices)}")
        return cyclic_merge(list(slices))
