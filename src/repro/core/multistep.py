"""Multi-step traversal with polynomial coding (paper Sections 4.3 / 6.1).

``l`` BFS steps are combined into one big coded step: the grid becomes
``P/(2k-1)**l × (2k-1)**l`` and only ``f * P/(2k-1)**l`` code processors
are needed — at ``l = log_(2k-1) P`` that is just ``f`` extra processors,
the paper's unlimited-memory optimum (Theorem 5.2's remark).

The coded step is, by Claim 2.1, an ``l``-variate polynomial
multiplication: the ``k**l`` top-level digit blocks are the coefficients of
a ``Poly_{k,l}`` element, evaluated over the ``(2k-1)**l``-point grid
``S^l`` plus ``f`` redundant points in ``(2k-1, l)``-general position.
The paper leaves *finding* those points as future work but supplies the
Section 6.2 heuristic, which :mod:`repro.coding.point_search` implements —
so this module realizes the paper's proposed extension end to end.

Fault handling is the polynomial code's: a fault kills its column; ascent
interpolation inverts the multivariate evaluation matrix of any
``(2k-1)**l`` surviving columns (general position guarantees
invertibility, Claim 6.1).
"""

from __future__ import annotations

import math

from repro.bigint.blockops import apply_matrix_to_blocks, matrix_apply_flops
from repro.bigint.limbs import LimbVector
from repro.bigint.multivariate import evaluation_matrix_multivariate, monomials
from repro.coding.point_search import multistep_evaluation_points
from repro.core.ft_polynomial import (
    FaultToleranceExceeded,
    PolynomialCodedToomCook,
)
from repro.core.parallel_toomcook import TAG_BFS_DOWN, TAG_BFS_UP
from repro.core.plan import ExecutionPlan
from repro.machine.errors import PeerDead
from repro.machine.fault import FaultSchedule
from repro.util.rational import FractionMatrix

__all__ = ["MultiStepToomCook"]


def _digit_reverse(index: int, base: int, length: int) -> int:
    """Reverse the base-``base`` digits of ``index`` (width ``length``)."""
    out = 0
    for _ in range(length):
        out = out * base + index % base
        index //= base
    return out


class MultiStepToomCook(PolynomialCodedToomCook):
    """Fault-tolerant parallel Toom-Cook with ``l`` combined BFS steps.

    Parameters
    ----------
    plan:
        Unlimited-memory plan (``l_dfs == 0``) with ``l_bfs >= l``.
    l:
        Number of combined steps (``1`` degenerates to the plain
        polynomial code).
    f:
        Tolerated faults = redundant multivariate evaluation points =
        code columns of ``P/(2k-1)**l`` processors.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        l: int,
        f: int,
        memory_words: float = math.inf,
        fault_schedule: FaultSchedule | None = None,
        timeout: float = 60.0,
        point_search_limit: int = 12,
    ):
        if not (1 <= l <= plan.l_bfs):
            raise ValueError(f"l must be in [1, l_bfs={plan.l_bfs}]")
        if f < 1:
            raise ValueError("f must be at least 1")
        if plan.l_dfs != 0:
            raise ValueError("MultiStepToomCook requires an unlimited-memory plan")
        # Skip the univariate-points setup of the poly class: initialize
        # the grandparent directly, then install the multivariate code.
        from repro.core.parallel_toomcook import ParallelToomCook

        ParallelToomCook.__init__(
            self,
            plan,
            points=None,
            memory_words=memory_words,
            fault_schedule=fault_schedule,
            timeout=timeout,
        )
        self.f = f
        self.l = l
        self.q_l = plan.q**l
        self.k_l = plan.k**l
        self.g2 = plan.p // self.q_l
        self._poly_code_base = plan.p
        self._coded_fanout = self.q_l
        self.multi_points = multistep_evaluation_points(
            plan.k, l, f, limit=point_search_limit
        )
        # Evaluation matrix for the operands (Poly_{k,l}), with columns
        # permuted to match block order (block b <-> monomial with the
        # digit-reversed index).
        eval_m = evaluation_matrix_multivariate(self.multi_points, plan.k, l)
        perm = [_digit_reverse(j, plan.k, l) for j in range(self.k_l)]
        self.U_multi = FractionMatrix(
            [[row[perm.index(b)] for b in range(self.k_l)] for row in eval_m.rows]
        )

    # -- geometry ---------------------------------------------------------------
    def machine_size(self) -> int:
        """``P + f * P/(2k-1)**l`` processors (Figure 3)."""
        return self.plan.p + self.f * self.g2

    def n_columns(self) -> int:
        return self.q_l + self.f

    def column_members(self, j: int) -> list[int]:
        if not (0 <= j < self.n_columns()):
            raise ValueError(f"column {j} out of range")
        if j < self.q_l:
            return list(range(j * self.g2, (j + 1) * self.g2))
        return [
            self._poly_code_base + (j - self.q_l) * self.g2 + c
            for c in range(self.g2)
        ]

    def _my_column(self, comm) -> int:
        if comm.rank < self.plan.p:
            return comm.rank // self.g2
        return self.q_l + (comm.rank - self._poly_code_base) // self.g2

    # -- rank program ------------------------------------------------------------
    def _standard_main(self, comm, va: LimbVector, vb: LimbVector):
        comm.memory.allocate(
            "operands", va.words(comm.word_bits) + vb.words(comm.word_bits)
        )
        ctx = {"scope": 0, "guard": self._make_guard()}
        with comm.phase("evaluation"):
            blocks_a = va.split_blocks(self.k_l)
            blocks_b = vb.split_blocks(self.k_l)
            evals_a = apply_matrix_to_blocks(self.U_multi.rows, blocks_a)
            evals_b = apply_matrix_to_blocks(self.U_multi.rows, blocks_b)
            comm.charge_flops(
                2 * matrix_apply_flops(self.U_multi.rows, len(va) // self.k_l)
            )
            payload = list(zip(evals_a, evals_b))
            new_group, parts = self._coded_exchange_down(comm, payload, ctx)
        from repro.core.layout import cyclic_merge

        ta = cyclic_merge([p[0] for p in parts])
        tb = cyclic_merge([p[1] for p in parts])
        sub_result = self._level(comm, new_group, ta, tb, level=self.l, ctx=ctx)
        self._send_ascent_parts(comm, new_group, sub_result, ctx)
        return self._coded_interpolation(comm)

    def _code_main(self, comm):
        ctx = {"scope": 0, "guard": self._make_guard()}
        my_col = self._my_column(comm)
        new_group = self.column_members(my_col)
        my_class = new_group.index(comm.rank)
        parts = []
        with comm.phase("evaluation"):
            for jp in range(self._coded_fanout):
                src = my_class + jp * self.g2
                parts.append(
                    comm.recv(
                        src,
                        tag=self._tag(TAG_BFS_DOWN, 0, ctx),
                        abort_check=ctx.get("scope", 0),
                    )
                )
        from repro.core.layout import cyclic_merge

        ta = cyclic_merge([p[0] for p in parts])
        tb = cyclic_merge([p[1] for p in parts])
        sub_result = self._level(comm, new_group, ta, tb, level=self.l, ctx=ctx)
        self._send_ascent_parts(comm, new_group, sub_result, ctx)
        return None

    # -- multivariate interpolation ---------------------------------------------------
    def _coded_interpolation(
        self, comm, ctx: dict | None = None, tag_base: int = TAG_BFS_UP
    ) -> LimbVector:
        """Collect any ``(2k-1)**l`` surviving columns, invert their
        multivariate evaluation matrix, and overlap-add the coefficient
        blocks at their mixed-radix offsets."""
        plan = self.plan
        ctx = ctx or {"scope": 0}
        task = ctx.get("scope", 0)
        my_class = comm.rank
        need = (2 * plan.k - 1) ** self.l
        with comm.phase("interpolation"):
            collected: dict[int, LimbVector] = {}
            for j in range(self.n_columns()):
                if len(collected) == need:
                    break
                members = self.column_members(j)
                if comm.withdrawn_ranks(members, task=task):
                    continue
                src = members[my_class % self.g2]
                if src == comm.rank:
                    block = comm.heap.get(f"_kept_ascent.{task}")
                    if block is None:
                        continue
                    collected[j] = block
                    continue
                try:
                    block = comm.recv(
                        src, tag=self._tag(tag_base, 0, ctx), abort_check=task
                    )
                except PeerDead:
                    continue
                collected[j] = block
            if len(collected) < need:
                raise FaultToleranceExceeded(
                    f"only {len(collected)} columns survived; {need} needed "
                    f"(f={self.f} exceeded)"
                )
            chosen = sorted(collected)[:need]
            points = [self.multi_points[j] for j in chosen]
            e = evaluation_matrix_multivariate(points, 2 * plan.k - 1, self.l)
            w = e.inv()
            blocks = [collected[j] for j in chosen]
            coeffs = apply_matrix_to_blocks(w.rows, blocks)
            comm.charge_flops(matrix_apply_flops(w.rows, len(blocks[0])))
            out = self._multivariate_overlap_add(comm, coeffs)
        return out

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _multivariate_overlap_add(self, comm, coeffs: list[LimbVector]) -> LimbVector:
        """Place the coefficient block of each ``Poly_{2k-1,l}`` monomial
        at its univariate offset ``sum_i e_i * n/k**(i+1)`` (local words)."""
        plan = self.plan
        r = 2 * plan.k - 1
        local_total = 2 * plan.n_words // plan.p
        out = [0] * local_total
        base_bits = coeffs[0].base_bits
        mons = monomials(r, self.l)
        for m, block in enumerate(coeffs):
            exps = mons[m]
            offset_global = sum(
                e * (plan.n_words // plan.k ** (i + 1)) for i, e in enumerate(exps)
            )
            offset = offset_global // plan.p  # cyclic layout: P | each weight
            for t, v in enumerate(block):
                out[offset + t] += v
        comm.charge_flops(len(coeffs) * len(coeffs[0]))
        return LimbVector(out, base_bits)
