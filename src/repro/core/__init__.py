"""The paper's contribution: parallel and fault-tolerant Toom-Cook.

- :mod:`repro.core.plan` — BFS/DFS schedules (Lemma 3.1) and input padding.
- :mod:`repro.core.layout` — the cyclic word layout (Section 3's
  block-cyclic distribution) and its repartition maps.
- :mod:`repro.core.parallel_toomcook` — Parallel Toom-Cook-k (Section 3),
  generalizing De Stefani's parallel Karatsuba.
- :mod:`repro.core.ft_linear` — the linear (Vandermonde) column code for
  the evaluation/interpolation phases (Section 4.1).
- :mod:`repro.core.ft_polynomial` — the polynomial code: redundant
  evaluation points protecting the multiplication phase (Section 4.2).
- :mod:`repro.core.ft_toomcook` — the combined fault-tolerant algorithm
  (Theorem 5.2).
- :mod:`repro.core.multistep` — multi-step traversal (Sections 4.3 / 6.1)
  with redundant multivariate points from the Section 6.2 search.
- :mod:`repro.core.replication` — the replication baseline (Theorem 5.3).
- :mod:`repro.core.checkpoint` — a checkpoint-restart baseline (the other
  general-purpose alternative from the introduction).
- :mod:`repro.core.api` — user-facing entry points.
"""

from repro.core.plan import ExecutionPlan, make_plan, min_dfs_steps
from repro.core.layout import CyclicLayout
from repro.core.parallel_toomcook import ParallelToomCook
from repro.core.ft_polynomial import PolynomialCodedToomCook
from repro.core.ft_linear import LinearCodedState, ColumnCode
from repro.core.ft_toomcook import FaultTolerantToomCook
from repro.core.multistep import MultiStepToomCook
from repro.core.soft_faults import SoftTolerantToomCook, SoftFaultDetected
from repro.core.replication import ReplicatedToomCook
from repro.core.checkpoint import CheckpointedToomCook
from repro.core.api import (
    multiply,
    multiply_parallel,
    multiply_fault_tolerant,
    multiply_replicated,
    multiply_checkpointed,
    multiply_multistep,
    multiply_soft_tolerant,
)

__all__ = [
    "ExecutionPlan",
    "make_plan",
    "min_dfs_steps",
    "CyclicLayout",
    "ParallelToomCook",
    "PolynomialCodedToomCook",
    "LinearCodedState",
    "ColumnCode",
    "FaultTolerantToomCook",
    "MultiStepToomCook",
    "SoftTolerantToomCook",
    "SoftFaultDetected",
    "ReplicatedToomCook",
    "CheckpointedToomCook",
    "multiply",
    "multiply_parallel",
    "multiply_fault_tolerant",
    "multiply_replicated",
    "multiply_checkpointed",
    "multiply_multistep",
    "multiply_soft_tolerant",
]
