"""High-level entry points.

Most users want one of four calls:

- :func:`multiply` — sequential Toom-Cook-k (Algorithm 1 or the lazy
  Algorithm 2), verified exact.
- :func:`multiply_parallel` — Parallel Toom-Cook on a simulated
  ``P``-processor machine (Section 3), returning the product plus the
  measured F/BW/L cost evidence.
- :func:`multiply_fault_tolerant` — the paper's combined fault-tolerant
  algorithm (Section 4), tolerating ``f`` injected hard faults.
- :func:`multiply_replicated` — the replication baseline (Theorem 5.3).

Each parallel call accepts a fault schedule so fault campaigns are one
argument away; see :mod:`repro.machine.fault`.
"""

from __future__ import annotations

import math

from repro.bigint.lazy import LazyToomCook
from repro.bigint.toomcook import ToomCook
from repro.core.checkpoint import CheckpointedToomCook
from repro.core.ft_toomcook import FaultTolerantToomCook
from repro.core.multistep import MultiStepToomCook
from repro.core.parallel_toomcook import MultiplyOutcome, ParallelToomCook
from repro.core.plan import make_plan
from repro.core.replication import ReplicatedToomCook
from repro.core.soft_faults import SoftTolerantToomCook
from repro.machine.fault import FaultSchedule

__all__ = [
    "multiply",
    "multiply_parallel",
    "multiply_fault_tolerant",
    "multiply_replicated",
    "multiply_checkpointed",
    "multiply_multistep",
    "multiply_soft_tolerant",
]


def multiply(a: int, b: int, k: int = 3, lazy: bool = False, word_bits: int = 64) -> int:
    """Sequential Toom-Cook-k product of two ints (any sign)."""
    algo = LazyToomCook(k, threshold_bits=word_bits) if lazy else ToomCook(
        k, threshold_bits=word_bits
    )
    product, _flops = algo.multiply(a, b)
    return product


def _plan_for(a: int, b: int, p: int, k: int, word_bits: int, m_words: float):
    n_bits = max(abs(a).bit_length(), abs(b).bit_length(), 1)
    return make_plan(n_bits, p=p, k=k, word_bits=word_bits, m_words=m_words)


def multiply_parallel(
    a: int,
    b: int,
    p: int = 9,
    k: int = 2,
    word_bits: int = 64,
    m_words: float = math.inf,
    fault_schedule: FaultSchedule | None = None,
    trace=None,
    recorder=None,
) -> MultiplyOutcome:
    """Parallel Toom-Cook-k on ``p`` simulated processors (Section 3).

    ``trace`` enables the observability layer (see :mod:`repro.obs`); the
    resulting events and metrics ride back on ``outcome.run``.
    ``recorder`` enables schedule extraction (see :mod:`repro.commcheck`):
    pass a :class:`~repro.machine.record.ScheduleRecorder` to capture the
    run's communication graph.
    """
    plan = _plan_for(a, b, p, k, word_bits, m_words)
    algo = ParallelToomCook(
        plan, memory_words=m_words, fault_schedule=fault_schedule, trace=trace
    )
    if recorder is not None:
        algo.recorder = recorder
    return algo.multiply(a, b)


def multiply_fault_tolerant(
    a: int,
    b: int,
    p: int = 9,
    k: int = 2,
    f: int = 1,
    word_bits: int = 64,
    m_words: float = math.inf,
    fault_schedule: FaultSchedule | None = None,
    trace=None,
    recorder=None,
) -> MultiplyOutcome:
    """The combined fault-tolerant algorithm (Section 4, Theorem 5.2)."""
    plan = _plan_for(a, b, p, k, word_bits, m_words)
    algo = FaultTolerantToomCook(
        plan, f=f, memory_words=m_words, fault_schedule=fault_schedule,
        trace=trace,
    )
    if recorder is not None:
        algo.recorder = recorder
    return algo.multiply(a, b)


def multiply_replicated(
    a: int,
    b: int,
    p: int = 9,
    k: int = 2,
    f: int = 1,
    word_bits: int = 64,
    m_words: float = math.inf,
    fault_schedule: FaultSchedule | None = None,
    recorder=None,
) -> MultiplyOutcome:
    """The replication baseline (Theorem 5.3): ``f+1`` copies."""
    plan = _plan_for(a, b, p, k, word_bits, m_words)
    algo = ReplicatedToomCook(
        plan, f=f, memory_words=m_words, fault_schedule=fault_schedule
    )
    if recorder is not None:
        algo.recorder = recorder
    return algo.multiply(a, b)


def multiply_checkpointed(
    a: int,
    b: int,
    p: int = 9,
    k: int = 2,
    f: int = 1,
    word_bits: int = 64,
    fault_schedule: FaultSchedule | None = None,
    recorder=None,
) -> MultiplyOutcome:
    """The checkpoint-restart baseline (global rollback)."""
    plan = _plan_for(a, b, p, k, word_bits, math.inf)
    algo = CheckpointedToomCook(plan, f=f, fault_schedule=fault_schedule)
    if recorder is not None:
        algo.recorder = recorder
    return algo.multiply(a, b)


def multiply_multistep(
    a: int,
    b: int,
    p: int = 9,
    k: int = 2,
    l: int = 1,
    f: int = 1,
    word_bits: int = 64,
    fault_schedule: FaultSchedule | None = None,
    recorder=None,
) -> MultiplyOutcome:
    """Multi-step fault-tolerant Toom-Cook (Sections 4.3/6.1): ``l``
    combined BFS steps, only ``f * P/(2k-1)**l`` code processors."""
    plan = _plan_for(a, b, p, k, word_bits, math.inf)
    algo = MultiStepToomCook(plan, l=l, f=f, fault_schedule=fault_schedule)
    if recorder is not None:
        algo.recorder = recorder
    return algo.multiply(a, b)


def multiply_soft_tolerant(
    a: int,
    b: int,
    p: int = 9,
    k: int = 2,
    f: int = 2,
    word_bits: int = 64,
    fault_schedule: FaultSchedule | None = None,
    recorder=None,
) -> MultiplyOutcome:
    """Soft-fault hardened multiplication (Section 7): detects up to ``f``
    and corrects up to ``floor(f/2)`` silent miscalculations."""
    plan = _plan_for(a, b, p, k, word_bits, math.inf)
    algo = SoftTolerantToomCook(plan, f=f, fault_schedule=fault_schedule)
    if recorder is not None:
        algo.recorder = recorder
    return algo.multiply(a, b)
