"""The replication baseline (paper Theorem 5.3).

The general-purpose alternative the paper compares against: run ``f + 1``
independent copies of Parallel Toom-Cook on ``f + 1`` disjoint sets of
``P`` processors (``f * P`` *additional* processors).  Any ``f`` hard
faults can kill at most ``f`` copies, so at least one copy finishes; its
output is taken.

Costs: each copy's F/BW/L equal the base algorithm's (replicating the
input costs ``o(1)``, which we model as part of the initial distribution),
but the machine is ``(f+1) P`` processors — the ``Θ(P/(2k-1))`` resource
overhead the paper's algorithm eliminates.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.layout import CyclicLayout
from repro.core.parallel_toomcook import MultiplyOutcome, ParallelToomCook
from repro.core.plan import ExecutionPlan
from repro.machine.errors import HardFault, MachineError
from repro.machine.fault import FaultSchedule

__all__ = ["ReplicatedToomCook"]


class ReplicatedToomCook(ParallelToomCook):
    """``f + 1``-fold replicated parallel Toom-Cook."""

    def __init__(
        self,
        plan: ExecutionPlan,
        f: int,
        memory_words: float = math.inf,
        fault_schedule: FaultSchedule | None = None,
        timeout: float = 60.0,
    ):
        if f < 1:
            raise ValueError("f must be at least 1")
        super().__init__(
            plan,
            memory_words=memory_words,
            fault_schedule=fault_schedule,
            timeout=timeout,
        )
        self.f = f

    @property
    def copies(self) -> int:
        return self.f + 1

    def machine_size(self) -> int:
        """``(f+1) * P`` processors: ``f * P`` additional (Theorem 5.3)."""
        return self.copies * self.plan.p

    def _rank_args(self, slices_a, slices_b) -> list[tuple]:
        args = []
        for _copy in range(self.copies):
            args.extend((slices_a[r], slices_b[r]) for r in range(self.plan.p))
        return args

    def _rank_main(self, comm, va, vb):
        """Each copy runs the standard algorithm on its own rank block; a
        hard fault abandons that copy (no recovery — that is the point of
        the baseline)."""
        copy = comm.rank // self.plan.p
        base = copy * self.plan.p
        group = list(range(base, base + self.plan.p))
        sub = comm.sub(group)
        try:
            # Run the standard traversal inside this copy's communicator;
            # distinct ctx scopes keep the copies' messages apart (they use
            # disjoint ranks anyway — the scope is belt and braces).
            result = self._level(sub, list(range(self.plan.p)), va, vb, 0, {"scope": copy})
            return result
        except HardFault:
            # The processor died; its copy is lost.  No replacement logic:
            # replication's whole pitch is that another copy finishes.
            return None
        except MachineError:
            # A peer in this copy died; the copy cannot finish.
            return None

    def _level(self, comm, group, va, vb, level, ctx):
        # Group lists are local ranks within the copy's sub-communicator.
        return super()._level(comm, group, va, vb, level, ctx)

    def _assemble(self, results: list[Any]) -> int:
        """Take the first copy whose every rank produced a slice."""
        for copy in range(self.copies):
            block = results[copy * self.plan.p : (copy + 1) * self.plan.p]
            if all(s is not None for s in block):
                return CyclicLayout(self.plan.p).collect(block).to_int()
        raise MachineError(
            f"all {self.copies} replicas failed — more than f={self.f} faults?"
        )

    def multiply(self, a: int, b: int, raise_on_error: bool = False) -> MultiplyOutcome:
        """Rank errors within a killed copy are expected, so errors are
        tolerated as long as one replica finishes."""
        outcome = super().multiply(a, b, raise_on_error=False)
        return outcome
