"""Soft-fault tolerance via the polynomial code (paper Section 7).

The paper notes its algorithm "can easily be adapted for soft faults" —
silent miscalculations.  The adaptation is exactly the classic
Reed-Solomon argument applied to the redundant evaluation points: the
``2k-1+f`` column results are a codeword of an MDS code of distance
``f+1`` over the product polynomial, so

- up to ``f`` corrupted column results can be **detected** (some
  redundant evaluation disagrees with the interpolation of any clean
  ``2k-1``-subset), and
- up to ``floor(f/2)`` corrupted results can be **corrected**: some
  ``2k-1``-subset's interpolation agrees with at least
  ``2k-1 + f - floor(f/2)`` of all columns, and only the true product can
  reach that agreement count.

:class:`SoftTolerantToomCook` implements this: leaf computations pass
through a soft-fault point (a scheduled ``kind="soft"`` event silently
corrupts the column's sub-product), and the coded interpolation searches
for the consistent subset instead of trusting the first ``2k-1`` columns.
Detection-only mode (``f < 2``) raises :class:`SoftFaultDetected` rather
than returning a wrong product — never silent corruption.
"""

from __future__ import annotations

import math
from itertools import combinations

from repro.bigint.blockops import apply_matrix_to_blocks, matrix_apply_flops
from repro.bigint.limbs import LimbVector
from repro.bigint.matrices import evaluation_matrix, interpolation_matrix_for_points
from repro.core.ft_polynomial import PolynomialCodedToomCook
from repro.core.parallel_toomcook import TAG_BFS_UP
from repro.core.plan import ExecutionPlan
from repro.machine.errors import MachineError, PeerDead
from repro.machine.fault import FaultSchedule

__all__ = ["SoftTolerantToomCook", "SoftFaultDetected"]


class SoftFaultDetected(MachineError):
    """Soft corruption detected but not correctable with this ``f``."""


class SoftTolerantToomCook(PolynomialCodedToomCook):
    """Polynomial-coded Toom-Cook hardened against silent miscalculation.

    ``f`` redundant evaluation points give detection of up to ``f`` and
    correction of up to ``floor(f/2)`` corrupted column results.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        f: int,
        memory_words: float = math.inf,
        fault_schedule: FaultSchedule | None = None,
        timeout: float = 60.0,
    ):
        super().__init__(
            plan,
            f=f,
            memory_words=memory_words,
            fault_schedule=fault_schedule,
            timeout=timeout,
        )

    @property
    def correctable(self) -> int:
        return self.f // 2

    # -- corruption injection -----------------------------------------------------
    def _leaf_multiply(self, comm, va: LimbVector, vb: LimbVector, ctx: dict):
        with comm.phase("multiplication"):
            out = super()._leaf_multiply(comm, va, vb, ctx)
            if comm.soft_fault_point():
                # The processor miscalculated: flip a value silently.
                corrupted = list(out.limbs)
                corrupted[len(corrupted) // 2] += 1 + abs(corrupted[0])
                out = LimbVector(corrupted, out.base_bits)
        return out

    # -- verified interpolation ---------------------------------------------------------
    def _coded_interpolation(
        self, comm, ctx: dict | None = None, tag_base: int = TAG_BFS_UP
    ) -> LimbVector:
        """Collect *all* live columns and interpolate from a subset whose
        product is consistent with enough of the rest (RS decoding by
        subset search — exponential in f, fine for the small f of the
        paper's setting)."""
        plan = self.plan
        ctx = ctx or {"scope": 0}
        task = ctx.get("scope", 0)
        my_class = comm.rank
        q = plan.q
        with comm.phase("interpolation"):
            collected: dict[int, LimbVector] = {}
            for j in range(self.n_columns()):
                members = self.column_members(j)
                if comm.withdrawn_ranks(members, task=task):
                    continue
                src = members[my_class % self.g2]
                if src == comm.rank:
                    block = comm.heap.get(f"_kept_ascent.{task}")
                    if block is not None:
                        collected[j] = block
                    continue
                try:
                    collected[j] = comm.recv(
                        src, tag=self._tag(tag_base, 0, ctx), abort_check=task
                    )
                except PeerDead:
                    continue
            if len(collected) < q:
                raise MachineError(
                    f"only {len(collected)} columns alive; {q} needed"
                )
            live = sorted(collected)
            # Erasure-aware capability: hard faults consumed part of the
            # redundancy, so only ``live - q`` spare evaluations remain to
            # spend on silent corruptions.  The acceptance threshold must
            # stay above ``q - 1 + correctable`` — a wrong subset agrees
            # with its own q members automatically (interpolation passes
            # through them), plus at most ``correctable`` corrupted
            # columns — or erased runs would accept corrupted subsets.
            spare = len(live) - q
            correctable = spare // 2
            threshold = len(live) - correctable
            best = None
            for subset in combinations(live, q):
                try:
                    coeffs = self._interp_subset(comm, collected, list(subset))
                except ValueError:
                    # Non-integral interpolation: the subset contains a
                    # corrupted result (honest Toom-Cook data always
                    # interpolates integrally) — itself a detection.
                    continue
                agree = self._agreement(comm, coeffs, collected, live)
                if agree >= threshold:
                    best = (coeffs, agree, subset)
                    break
            if best is None:
                raise SoftFaultDetected(
                    f"no {q}-subset of column results is consistent with "
                    f">= {threshold} of {len(live)} live columns: more than "
                    f"floor(spare/2)={correctable} corruptions are present "
                    f"(spare={spare} after erasures; detectable but not "
                    "correctable)"
                )
            coeffs, agree, subset = best
            if agree < len(live):
                comm.heap["_soft_corrections"] = (
                    comm.heap.get("_soft_corrections", 0) + (len(live) - agree)
                )
            return self._overlap_add(comm, coeffs)

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _interp_subset(self, comm, collected, subset):
        points = [self.points[j] for j in subset]
        w_t = interpolation_matrix_for_points(points, self.plan.q)
        blocks = [collected[j] for j in subset]
        coeffs = apply_matrix_to_blocks(w_t.rows, blocks)
        comm.charge_flops(matrix_apply_flops(w_t.rows, len(blocks[0])))
        return coeffs

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _agreement(self, comm, coeffs, collected, live) -> int:
        """How many live columns' results match the candidate product's
        evaluation at their points."""
        eval_m = evaluation_matrix([self.points[j] for j in live], self.plan.q)
        expected = apply_matrix_to_blocks(eval_m.rows, coeffs)
        comm.charge_flops(matrix_apply_flops(eval_m.rows, len(coeffs[0])))
        agree = 0
        for j, exp in zip(live, expected):
            if collected[j] == exp:
                agree += 1
        return agree

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _overlap_add(self, comm, coeffs) -> LimbVector:
        child_offset = len(coeffs[0]) // 2
        out = [0] * (2 * self.plan.k * child_offset)
        for m, block in enumerate(coeffs):
            off = m * child_offset
            for t, v in enumerate(block):
                out[off + t] += v
        comm.charge_flops(len(coeffs) * len(coeffs[0]))
        return LimbVector(out, coeffs[0].base_bits)
