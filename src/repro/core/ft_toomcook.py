"""The combined fault-tolerant parallel Toom-Cook (paper Section 4,
Theorem 5.2).

Two codes cooperate, exactly as the paper prescribes:

- the **linear (Vandermonde) column code** (Section 4.1) protects every
  processor's *persistent state* — its operand slices and partially
  combined results — through the evaluation and interpolation phases.  It
  is (re)created with an ``f``-reduce at every protocol checkpoint and a
  dead processor's state is rebuilt on its replacement with one more
  reduce (``O(f*M)`` each, Lemma 2.5);
- the **polynomial code** (Section 4.2) — ``f`` redundant evaluation
  points feeding ``f`` code columns — protects the *multiplication
  window*: a fault there kills the faulty column and costs nothing,
  because interpolation needs only ``2k-1`` surviving columns.

Limited memory (Lemma 3.1) is handled by a **task loop**: the first
``l_dfs`` levels run as ``(2k-1)^l_dfs`` sequential tasks, each descending
through the coded BFS step; between tasks sits a *boundary* — the
checkpoint where failures are agreed on (the runtime provides ULFM-style
agreement), dead states are rebuilt, ascent slices owed to a replacement
are resent from their senders' caches, and the code is re-created.

Processor budget: ``P`` standard + ``f*(2k-1)`` linear-code +
``f*P/(2k-1)`` polynomial-code processors.  (The paper's headline
``f*(2k-1)`` extra-processor figure corresponds to multi-step traversal
collapsing the polynomial columns — see :mod:`repro.core.multistep`.)
"""

from __future__ import annotations

import math
from typing import Any

from repro.bigint.blockops import apply_matrix_to_blocks, matrix_apply_flops
from repro.bigint.limbs import LimbVector
from repro.core.ft_linear import ColumnCode, LinearCodedState
from repro.core.ft_polynomial import (
    ColumnKilled,
    FaultToleranceExceeded,
    PolynomialCodedToomCook,
)
from repro.core.parallel_toomcook import TAG_BFS_DOWN
from repro.core.plan import ExecutionPlan
from repro.machine.errors import HardFault, MachineError, PeerDead
from repro.machine.fault import FaultSchedule

__all__ = ["FaultTolerantToomCook", "TAG_RESEND"]

# Re-exported from the tag registry for existing importers.
from repro.machine.tags import TAG_RESEND  # noqa: E402


class FaultTolerantToomCook(PolynomialCodedToomCook):
    """Linear + polynomial coded parallel Toom-Cook (Theorem 5.2)."""

    def __init__(
        self,
        plan: ExecutionPlan,
        f: int,
        memory_words: float = math.inf,
        fault_schedule: FaultSchedule | None = None,
        timeout: float = 60.0,
        trace=None,
    ):
        if f < 1:
            raise ValueError("f must be at least 1")
        if plan.l_bfs < 1:
            raise ValueError("need at least one BFS step to apply the codes")
        # Bypass the poly-only l_dfs==0 restriction: replicate its setup.
        from repro.bigint.evalpoints import extended_toom_points
        from repro.core.parallel_toomcook import ParallelToomCook

        ParallelToomCook.__init__(
            self,
            plan,
            points=extended_toom_points(plan.k, f),
            memory_words=memory_words,
            fault_schedule=fault_schedule,
            timeout=timeout,
            trace=trace,
        )
        self.f = f
        self.g2 = plan.p // plan.q
        self._coded_fanout = plan.q
        # Rank geometry: [standard | linear-code rows | poly-code columns].
        self._linear_code_base = plan.p
        self._poly_code_base = plan.p + f * plan.q
        self._column_codes = [
            ColumnCode(
                column=list(range(j * self.g2, (j + 1) * self.g2)),
                code_ranks=[plan.p + i * plan.q + j for i in range(f)],
            )
            for j in range(plan.q)
        ]

    # -- geometry ------------------------------------------------------------
    def machine_size(self) -> int:
        """``P + f*(2k-1) + f*P/(2k-1)`` processors (Figures 1 + 2)."""
        return self.plan.p + self.f * self.plan.q + self.f * self.g2

    def _rank_args(self, slices_a, slices_b) -> list[tuple]:
        args: list[tuple] = [(slices_a[r], slices_b[r]) for r in range(self.plan.p)]
        args.extend([(None, None)] * (self.machine_size() - self.plan.p))
        return args

    def n_tasks(self) -> int:
        return self.plan.q**self.plan.l_dfs

    def _linear_column_of(self, rank: int) -> int:
        """Linear-code column of a standard rank (class block of P/q)."""
        return rank // self.g2

    def _task_path(self, t: int) -> list[int]:
        """Child indices (level 0 first) of DFS task ``t``."""
        path = []
        for j in range(self.plan.l_dfs):
            path.append((t // self.plan.q ** (self.plan.l_dfs - 1 - j)) % self.plan.q)
        return path

    def _stack_schema(self, t: int) -> list[int]:
        """Entries per DFS stack level after ``t`` completed tasks."""
        return [
            (t // self.plan.q ** (self.plan.l_dfs - 1 - j)) % self.plan.q
            for j in range(self.plan.l_dfs)
        ]

    # -- rank dispatch -------------------------------------------------------------
    def _rank_main(self, comm, va, vb):
        if comm.rank < self._linear_code_base:
            return self._standard_main(comm, va, vb)
        if comm.rank < self._poly_code_base:
            return self._linear_code_main(comm)
        return self._poly_code_main(comm)

    # -- standard processors -----------------------------------------------------------
    MAX_ATTEMPTS = 8

    def _scope(self, t: int, attempt: int) -> int:
        """Unique id for (task, attempt): scopes tags, abort markers,
        gates, agreements and votes."""
        return t * self.MAX_ATTEMPTS + attempt

    def _standard_main(self, comm, va: LimbVector, vb: LimbVector):
        plan = self.plan
        stack: list[list[LimbVector]] | None = [[] for _ in range(plan.l_dfs)]
        self._encode_state(comm, va, vb, stack, epoch=0)
        final: LimbVector | None = None
        all_ranks = list(range(self.machine_size()))
        stale_codes: set[int] = set()
        t = 0
        while t < self.n_tasks():
            attempt = 0
            while True:
                scope = self._scope(t, attempt)
                lost = False
                result_t: LimbVector | None = None
                try:
                    result_t = self._run_task(comm, va, vb, t, scope)
                except HardFault:
                    # Hard fault: this slot's data is gone.  Stay "dead"
                    # until the boundary agreement has recorded us; the
                    # replacement comes up there and the linear code
                    # rebuilds its state.
                    va = vb = None
                    stack = None
                    final = None
                    lost = True
                except (ColumnKilled, PeerDead):
                    # Column halted (Section 4.2); still owed the parent
                    # role at the coded-step interpolation.
                    comm.mark_aborted(scope)
                    try:
                        result_t = self._coded_interpolation(
                            comm, ctx={"scope": scope}
                        )
                    except FaultToleranceExceeded:
                        result_t = None
                except FaultToleranceExceeded:
                    result_t = None

                # Boundary: agree on the attempt's outcome and failures.
                if not lost:
                    comm.vote(("vote", scope), result_t is not None)
                comm.gate(("gate", scope), all_ranks)
                dead = comm.agree_dead(("boundary", scope), all_ranks)
                if lost:
                    if comm.rank not in dead:  # pragma: no cover
                        raise MachineError("lost state but not agreed dead")
                    comm.begin_replacement(purge=False)
                votes = comm.poll_votes(("vote", scope))
                success = bool(votes) and all(votes.values())
                stale_codes |= {
                    r
                    for r in dead
                    if self._linear_code_base <= r < self._poly_code_base
                }
                dead_standard = sorted(r for r in dead if r < self.plan.p)
                if dead_standard:
                    va, vb, stack = self._linear_recovery(
                        comm, t, scope, dead_standard, va, vb, stack, lost,
                        stale_codes,
                    )
                if success:
                    if dead_standard:
                        self._resend_ascent(comm, scope, dead_standard)
                    if result_t is None:
                        result_t = self._coded_interpolation(
                            comm, ctx={"scope": scope}, tag_base=TAG_RESEND
                        )
                    break
                attempt += 1
                if attempt >= self.MAX_ATTEMPTS:
                    raise FaultToleranceExceeded(
                        f"task {t} failed {attempt} consecutive attempts"
                    )
            final = self._push_and_combine(comm, stack, result_t)
            self._encode_state(comm, va, vb, stack, epoch=t + 1)
            stale_codes.clear()  # every code word is fresh again
            t += 1
        return final

    def _run_task(
        self, comm, va: LimbVector, vb: LimbVector, t: int, scope: int
    ) -> LimbVector:
        plan = self.plan
        ctx = {"scope": scope, "guard": self._make_guard(task=scope)}
        with comm.phase("evaluation"):
            ta, tb = self._task_operands(comm, va, vb, t)
            evals_a = apply_matrix_to_blocks(self.U.rows, ta.split_blocks(plan.k))
            evals_b = apply_matrix_to_blocks(self.V.rows, tb.split_blocks(plan.k))
            comm.charge_flops(2 * matrix_apply_flops(self.U.rows, len(ta) // plan.k))
            payload = list(zip(evals_a, evals_b))
            new_group, parts = self._coded_exchange_down(comm, payload, ctx)
        from repro.core.layout import cyclic_merge

        sub_a = cyclic_merge([p[0] for p in parts])
        sub_b = cyclic_merge([p[1] for p in parts])
        sub_result = self._level(
            comm, new_group, sub_a, sub_b, level=plan.l_dfs + 1, ctx=ctx
        )
        self._send_ascent_parts(comm, new_group, sub_result, ctx)
        return self._coded_interpolation(comm, ctx=ctx)

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _task_operands(self, comm, va, vb, t: int) -> tuple[LimbVector, LimbVector]:
        """Evaluate the DFS path for task ``t`` (local; prefix-cached so
        shared path prefixes are not recomputed — the classic DFS walk)."""
        cache = comm.heap.setdefault("_dfs_prefix", {})
        path = self._task_path(t)
        ta, tb = va, vb
        prefix: tuple[int, ...] = ()
        for digit in path:
            prefix = prefix + (digit,)
            hit = cache.get(prefix)
            if hit is None:
                row_u = [self.U.rows[digit]]
                ta2 = apply_matrix_to_blocks(row_u, ta.split_blocks(self.plan.k))[0]
                tb2 = apply_matrix_to_blocks(row_u, tb.split_blocks(self.plan.k))[0]
                comm.charge_flops(2 * matrix_apply_flops(row_u, len(ta2)))
                # Drop stale siblings: only the current path stays cached.
                for key in [k for k in cache if len(k) >= len(prefix)]:
                    del cache[key]
                cache[prefix] = (ta2, tb2)
                hit = cache[prefix]
            ta, tb = hit
        return ta, tb

    def _push_and_combine(
        self, comm, stack: list[list[LimbVector]], result: LimbVector
    ) -> LimbVector | None:
        """Post-order combine: push the task result, collapsing any full
        DFS level with local interpolation + overlap-add."""
        if not stack:  # l_dfs == 0: the single task result is final
            return result
        with comm.phase("interpolation"):
            stack[-1].append(result)
            level = len(stack) - 1
            while level >= 0 and len(stack[level]) == self.plan.q:
                blocks = stack[level]
                combined = self._interpolate_and_overlap(
                    comm, blocks, len(blocks[0]) // 2
                )
                stack[level] = []
                if level == 0:
                    return combined
                stack[level - 1].append(combined)
                level -= 1
        return None

    # -- boundary protocol -----------------------------------------------------------------
    def _linear_recovery(
        self, comm, t, scope, dead_standard, va, vb, stack, lost, stale_codes=()
    ):
        """Rebuild every dead standard rank's persistent state from the
        last encode (Section 4.1 fault recovery: one reduce per fault)."""
        my_col = self._linear_column_of(comm.rank)
        cc = self._column_codes[my_col]
        dead_mine = [d for d in dead_standard if self._linear_column_of(d) == my_col]
        if not dead_mine:
            return va, vb, stack
        with comm.phase("recovery"):
            my_state = None
            if not lost:
                my_state = LinearCodedState.flatten(
                    [va, vb] + [v for level in stack for v in level]
                ).data
            recovered = cc.recover(
                comm,
                dead=dead_mine,
                my_state=my_state,
                my_code_word=None,
                epoch=scope,
                excluded=sorted(stale_codes),
            )
            if lost:
                schema = self._state_schema(t)
                vectors = LinearCodedState(recovered, schema).unflatten()
                va, vb = vectors[0], vectors[1]
                stack = []
                idx = 2
                for count in self._stack_schema(t):
                    stack.append(vectors[idx : idx + count])
                    idx += count
        return va, vb, stack

    def _state_schema(self, t: int) -> tuple[int, ...]:
        """Flattened-state shape after ``t`` completed tasks (deterministic,
        so replacements rebuild without metadata exchange)."""
        plan = self.plan
        local = plan.local_words
        schema = [local, local]  # va, vb
        for j, count in enumerate(self._stack_schema(t)):
            child_local = 2 * plan.n_words // plan.k ** (j + 1) // plan.p
            schema.extend([child_local] * count)
        return tuple(schema)

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _resend_ascent(self, comm, scope: int, dead_standard: list[int]) -> None:
        """Senders that owed this attempt's ascent slices to a dead parent
        resend them from cache (the replacement's mailbox survives)."""
        sent: dict[int, LimbVector] = comm.heap.get(f"_ascent_sent.{scope}", {})
        ctx = {"scope": scope}
        for d in dead_standard:
            if d in sent and d != comm.rank:
                comm.send(d, sent[d], tag=self._tag(TAG_RESEND, 0, ctx))

    def _encode_state(self, comm, va, vb, stack, epoch: int) -> None:
        """Code creation (Section 4.1): one f-reduce per column."""
        my_col = self._linear_column_of(comm.rank)
        cc = self._column_codes[my_col]
        with comm.phase("code-creation"):
            state = LinearCodedState.flatten(
                [va, vb] + [v for level in stack for v in level]
            ).data
            cc.encode(comm, state, epoch=epoch)

    # -- linear-code processors -------------------------------------------------------------
    def _linear_code_main(self, comm):
        """Code-row processors: hold the column's weighted state sum,
        refresh it at every task boundary, contribute to recoveries."""
        idx = comm.rank - self._linear_code_base
        my_col = idx % self.plan.q
        cc = self._column_codes[my_col]
        all_ranks = list(range(self.machine_size()))
        word: LimbVector | None = None
        stale_codes: set[int] = set()
        try:
            with comm.phase("code-creation"):
                word = cc.encode(comm, None, epoch=0)
        except HardFault:
            # Stay dead until the first boundary's agreement records the
            # failure; the replacement comes up there with no code word.
            pass
        t = 0
        while t < self.n_tasks():
            attempt = 0
            while True:
                scope = self._scope(t, attempt)
                try:
                    comm.gate(("gate", scope), all_ranks)
                    dead = comm.agree_dead(("boundary", scope), all_ranks)
                    if not comm.is_alive(comm.rank):
                        # Come up as the replacement now that the failure
                        # is recorded; the stale code word is lost and the
                        # next encode refreshes it.
                        comm.begin_replacement(purge=False)
                        word = None
                    votes = comm.poll_votes(("vote", scope))
                    success = bool(votes) and all(votes.values())
                    stale_codes |= {
                        r
                        for r in dead
                        if self._linear_code_base <= r < self._poly_code_base
                    }
                    dead_mine = sorted(
                        d
                        for d in dead
                        if d < self.plan.p and self._linear_column_of(d) == my_col
                    )
                    if dead_mine:
                        with comm.phase("recovery"):
                            cc.recover(
                                comm,
                                dead=dead_mine,
                                my_state=None,
                                my_code_word=word,
                                epoch=scope,
                                excluded=sorted(stale_codes),
                            )
                    if success:
                        with comm.phase("code-creation"):
                            word = cc.encode(comm, None, epoch=t + 1)
                        stale_codes.clear()
                        break
                except HardFault:
                    comm.gate(("gate", scope), all_ranks)
                    comm.agree_dead(("boundary", scope), all_ranks)
                    comm.begin_replacement(purge=False)
                    word = None
                    votes = comm.poll_votes(("vote", scope))
                    if bool(votes) and all(votes.values()):
                        break
                attempt += 1
                if attempt >= self.MAX_ATTEMPTS:
                    raise FaultToleranceExceeded(
                        f"task {t} failed {attempt} consecutive attempts"
                    )
            t += 1
        return None

    # -- polynomial-code processors ------------------------------------------------------------
    def _poly_code_main(self, comm):
        """Redundant-column processors: join each task attempt's coded
        step, run the standard recursion on the redundant sub-product,
        ship the result back.  Stateless between tasks."""
        my_col = self._my_column(comm)
        new_group = self.column_members(my_col)
        my_class = new_group.index(comm.rank)
        all_ranks = list(range(self.machine_size()))
        t = 0
        while t < self.n_tasks():
            attempt = 0
            while True:
                scope = self._scope(t, attempt)
                ctx = {"scope": scope, "guard": self._make_guard(task=scope)}
                crashed = False
                try:
                    parts = []
                    with comm.phase("evaluation"):
                        for jp in range(self.plan.q):
                            src = my_class + jp * self.g2
                            parts.append(
                                comm.recv(
                                    src,
                                    tag=self._tag(TAG_BFS_DOWN, 0, ctx),
                                    abort_check=scope,
                                )
                            )
                    from repro.core.layout import cyclic_merge

                    sub_a = cyclic_merge([p[0] for p in parts])
                    sub_b = cyclic_merge([p[1] for p in parts])
                    sub_result = self._level(
                        comm,
                        new_group,
                        sub_a,
                        sub_b,
                        level=self.plan.l_dfs + 1,
                        ctx=ctx,
                    )
                    self._send_ascent_parts(comm, new_group, sub_result, ctx)
                except HardFault:
                    crashed = True  # replacement comes up after agreement
                except (ColumnKilled, PeerDead):
                    comm.mark_aborted(scope)
                comm.gate(("gate", scope), all_ranks)
                dead = comm.agree_dead(("boundary", scope), all_ranks)
                if crashed:
                    comm.begin_replacement(purge=False)
                votes = comm.poll_votes(("vote", scope))
                success = bool(votes) and all(votes.values())
                dead_standard = sorted(r for r in dead if r < self.plan.p)
                if success:
                    if dead_standard:
                        self._resend_ascent(comm, scope, dead_standard)
                    break
                attempt += 1
                if attempt >= self.MAX_ATTEMPTS:
                    raise FaultToleranceExceeded(
                        f"task {t} failed {attempt} consecutive attempts"
                    )
            t += 1
        return None

    # -- assembly ----------------------------------------------------------------------------
    def _assemble(self, results: list[Any]) -> int:
        slices = results[: self.plan.p]
        if any(s is None for s in slices):
            missing = [r for r, s in enumerate(slices) if s is None]
            raise FaultToleranceExceeded(
                f"standard ranks {missing} produced no final result"
            )
        from repro.core.layout import CyclicLayout

        return CyclicLayout(self.plan.p).collect(slices).to_int()
