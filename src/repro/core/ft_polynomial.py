"""Polynomial-coded Toom-Cook (paper Section 4.2, Figure 2).

The first BFS step evaluates at ``2k-1+f`` points instead of ``2k-1``; the
``f`` extra evaluations go to ``f`` *code columns* of ``P/(2k-1)`` extra
processors appended at the right of the grid.  Every column — standard or
code — then runs the standard parallel recursion on its (sub-)product.

**Fault recovery is free**: a fault anywhere in the multiplication window
(at or below the coded step) kills the faulty processor's entire column
("we halt the execution of the remaining processors of its column"); the
interpolation at the coded step simply uses *any* ``2k-1`` surviving
columns, computing the interpolation matrix on the fly from their
evaluation points.  No recomputation, no data movement beyond the normal
ascent — this is the paper's headline improvement over Birnbaum et al.

Each parent rank may even pick a *different* surviving subset: any
``2k-1`` columns determine the product polynomial exactly, so no consensus
round is needed.

This class covers the unlimited-memory regime (``l_dfs == 0``); the
combined algorithm (:mod:`repro.core.ft_toomcook`) layers the linear code
on top for the limited-memory task loop and for evaluation/interpolation
faults.
"""

from __future__ import annotations

import math
from typing import Any

from repro.bigint.blockops import apply_matrix_to_blocks, matrix_apply_flops
from repro.bigint.evalpoints import extended_toom_points
from repro.bigint.limbs import LimbVector
from repro.bigint.matrices import interpolation_matrix_for_points
from repro.core.parallel_toomcook import (
    TAG_BFS_DOWN,
    TAG_BFS_UP,
    MultiplyOutcome,
    ParallelToomCook,
)
from repro.core.plan import ExecutionPlan
from repro.machine.errors import MachineError, PeerDead
from repro.machine.fault import FaultSchedule

__all__ = ["PolynomialCodedToomCook", "ColumnKilled", "FaultToleranceExceeded"]


class ColumnKilled(Exception):
    """Internal control flow: this rank's column lost a member."""


class FaultToleranceExceeded(MachineError):
    """More columns died than the ``f`` redundant evaluation points cover."""


class PolynomialCodedToomCook(ParallelToomCook):
    """Fault-tolerant parallel Toom-Cook via redundant evaluation points.

    Parameters
    ----------
    plan:
        Must be a pure-BFS plan (``l_dfs == 0``) with at least one BFS
        step; the combined algorithm handles the limited-memory case.
    f:
        Number of tolerated hard faults = redundant evaluation points =
        code columns of ``P/(2k-1)`` processors each.
    """

    #: Class default; instances override via the ``eager`` constructor
    #: argument.  Subclasses that bypass this constructor inherit False.
    eager = False

    def __init__(
        self,
        plan: ExecutionPlan,
        f: int,
        memory_words: float = math.inf,
        fault_schedule: FaultSchedule | None = None,
        timeout: float = 60.0,
        eager: bool = False,
    ):
        """``eager=True`` turns the coded interpolation into a straggler
        mitigator: parents poll all columns round-robin and interpolate
        from whichever ``2k-1`` arrive first, so a *delayed* processor
        (the paper's third fault category) never lands on the critical
        path — the classic latency benefit of coded computation."""
        if f < 1:
            raise ValueError("f must be at least 1 (use ParallelToomCook for f=0)")
        if plan.l_dfs != 0:
            raise ValueError(
                "PolynomialCodedToomCook requires an unlimited-memory plan "
                "(l_dfs == 0); use FaultTolerantToomCook for the general case"
            )
        if plan.l_bfs < 1:
            raise ValueError("need at least one BFS step to apply the code")
        points = extended_toom_points(plan.k, f)
        super().__init__(
            plan,
            points=points,
            memory_words=memory_words,
            fault_schedule=fault_schedule,
            timeout=timeout,
        )
        self.f = f
        self.g2 = plan.p // plan.q  # processors per column at the coded step
        # Global rank at which the poly-code columns start (the combined
        # algorithm moves this past its linear-code rows).
        self._poly_code_base = plan.p
        # How many ways the coded step fans out to standard columns (the
        # multi-step variant raises this to (2k-1)**l).
        self._coded_fanout = plan.q
        self.eager = eager

    # -- machine geometry ---------------------------------------------------
    def machine_size(self) -> int:
        """``P`` standard plus ``f * P/(2k-1)`` code processors."""
        return self.plan.p + self.f * self.g2

    def n_columns(self) -> int:
        return self.plan.q + self.f

    def column_members(self, j: int) -> list[int]:
        """Global ranks of column ``j`` at the coded step (class-ordered)."""
        if not (0 <= j < self.n_columns()):
            raise ValueError(f"column {j} out of range")
        if j < self.plan.q:
            return list(range(j * self.g2, (j + 1) * self.g2))
        return [
            self._poly_code_base + (j - self.plan.q) * self.g2 + c
            for c in range(self.g2)
        ]

    def _rank_args(self, slices_a, slices_b) -> list[tuple]:
        args: list[tuple] = [
            (slices_a[r], slices_b[r]) for r in range(self.plan.p)
        ]
        args.extend([(None, None)] * (self.f * self.g2))
        return args

    # -- rank program ---------------------------------------------------------
    def _rank_main(self, comm, va, vb):
        from repro.machine.errors import HardFault

        try:
            if comm.rank < self.plan.p:
                return self._standard_main(comm, va, vb)
            return self._code_main(comm)
        except HardFault:
            # Hard fault: the replacement processor takes over this grid
            # position.  Its column is dead (no recovery mechanism in the
            # polynomial code — Section 4.2), but a standard slot still
            # owes its parent role at the coded-step interpolation, whose
            # inputs arrive from *other* ranks.
            comm.mark_aborted(0)
            comm.begin_replacement(purge=False)
            if comm.rank < self.plan.p:
                return self._coded_interpolation(comm)
            return None
        except (ColumnKilled, PeerDead):
            # A column-mate died or withdrew: halt the column (Section 4.2
            # "we halt the execution of the remaining processors of its
            # column") and fall through to the parent role.
            comm.mark_aborted(0)
            if comm.rank < self.plan.p:
                return self._coded_interpolation(comm)
            return None

    def _my_column(self, comm) -> int:
        if comm.rank < self.plan.p:
            return comm.rank // self.g2
        return self.plan.q + (comm.rank - self._poly_code_base) // self.g2

    def _make_guard(self, task: int = 0):
        members_by_rank = {}
        for j in range(self.n_columns()):
            for r in self.column_members(j):
                members_by_rank[r] = self.column_members(j)

        def guard(comm):
            members = members_by_rank[comm.rank]
            if comm.withdrawn_ranks(members, task=task):
                raise ColumnKilled()

        return guard

    def _standard_main(self, comm, va: LimbVector, vb: LimbVector):
        plan = self.plan
        comm.memory.allocate(
            "operands", va.words(comm.word_bits) + vb.words(comm.word_bits)
        )
        ctx = {"scope": 0, "guard": self._make_guard()}
        # Coded step: evaluate at all 2k-1+f points, repartition to q+f
        # columns, then standard recursion inside the column.
        with comm.phase("evaluation"):
            evals_a = apply_matrix_to_blocks(self.U.rows, va.split_blocks(plan.k))
            evals_b = apply_matrix_to_blocks(self.V.rows, vb.split_blocks(plan.k))
            comm.charge_flops(2 * matrix_apply_flops(self.U.rows, len(va) // plan.k))
            payload = list(zip(evals_a, evals_b))
            new_group, parts = self._coded_exchange_down(comm, payload, ctx)
        from repro.core.layout import cyclic_merge

        ta = cyclic_merge([p[0] for p in parts])
        tb = cyclic_merge([p[1] for p in parts])
        sub_result = self._level(comm, new_group, ta, tb, level=1, ctx=ctx)
        self._send_ascent_parts(comm, new_group, sub_result, ctx)
        return self._coded_interpolation(comm)

    def _code_main(self, comm):
        """Code-column processors: join at the coded step's exchange, run
        the standard recursion on the redundant sub-product, ship it back."""
        ctx = {"scope": 0, "guard": self._make_guard()}
        my_col = self._my_column(comm)
        new_group = self.column_members(my_col)
        my_class = new_group.index(comm.rank)
        parts = []
        with comm.phase("evaluation"):
            for jp in range(self._coded_fanout):
                src = my_class + jp * self.g2  # standard rank (old class)
                parts.append(
                    comm.recv(
                        src,
                        tag=self._tag(TAG_BFS_DOWN, 0, ctx),
                        abort_check=ctx.get("scope", 0),
                    )
                )
        from repro.core.layout import cyclic_merge

        ta = cyclic_merge([p[0] for p in parts])
        tb = cyclic_merge([p[1] for p in parts])
        sub_result = self._level(comm, new_group, ta, tb, level=1, ctx=ctx)
        self._send_ascent_parts(comm, new_group, sub_result, ctx)
        return None

    # -- coded-step exchanges ----------------------------------------------------
    # repro-lint: in-phase -- runs inside the caller's phase context
    def _coded_exchange_down(self, comm, payload: list, ctx: dict):
        """Like the base descent exchange, but targets span all q+f columns
        (payload has q+f evaluation slices)."""
        g2 = self.g2
        my_class = comm.rank  # top-level group is [0..P-1] in class order
        kept: dict[int, Any] = {}
        for j in range(self.n_columns()):
            target = self.column_members(j)[my_class % g2]
            if target == comm.rank:
                kept[j] = payload[j]
            else:
                comm.send(target, payload[j], tag=self._tag(TAG_BFS_DOWN, 0, ctx))
        my_col = self._my_column(comm)
        new_group = self.column_members(my_col)
        my_new_class = new_group.index(comm.rank)
        parts = []
        for jp in range(self._coded_fanout):
            src = my_new_class + jp * g2
            if src == comm.rank:
                parts.append(kept[my_col])
            else:
                parts.append(
                    comm.recv(
                        src,
                        tag=self._tag(TAG_BFS_DOWN, 0, ctx),
                        abort_check=ctx.get("scope", 0),
                    )
                )
        return new_group, parts

    def _send_ascent_parts(self, comm, new_group, sub_result: LimbVector, ctx):
        """Deinterleave my column's result and send the parts back to the
        parent (standard) classes."""
        from repro.core.layout import cyclic_deinterleave

        with comm.phase("interpolation"):
            task = ctx.get("scope", 0)
            my_new_class = new_group.index(comm.rank)
            parts = cyclic_deinterleave(sub_result, self._coded_fanout)
            sent: dict[int, LimbVector] = {}
            for jp in range(self._coded_fanout):
                target = my_new_class + jp * self.g2  # parent standard rank
                if target == comm.rank:
                    comm.heap[f"_kept_ascent.{task}"] = parts[jp]
                else:
                    comm.send(target, parts[jp], tag=self._tag(TAG_BFS_UP, 0, ctx))
                sent[target] = parts[jp]
            # Cached for possible resends to a replacement parent (the
            # combined algorithm's boundary protocol).
            comm.heap[f"_ascent_sent.{task}"] = sent

    def _coded_interpolation(
        self, comm, ctx: dict | None = None, tag_base: int = TAG_BFS_UP
    ) -> LimbVector:
        """Collect result slices from any 2k-1 surviving columns and
        interpolate with the on-the-fly matrix (Section 4.2 correctness)."""
        plan = self.plan
        ctx = ctx or {"scope": 0}
        task = ctx.get("scope", 0)
        my_class = comm.rank
        with comm.phase("interpolation"):
            if self.eager:
                collected = self._collect_eager(comm, ctx, tag_base, task, my_class)
            else:
                collected = self._collect_in_order(
                    comm, ctx, tag_base, task, my_class
                )
            if len(collected) < plan.q:
                raise FaultToleranceExceeded(
                    f"only {len(collected)} columns survived; "
                    f"{plan.q} needed (f={self.f} exceeded)"
                )
            chosen = sorted(collected)[: plan.q]
            points = [self.points[j] for j in chosen]
            w_t = interpolation_matrix_for_points(points, plan.q)
            blocks = [collected[j] for j in chosen]
            out = self._interpolate_with(comm, w_t, blocks, len(blocks[0]) // 2)
        return out

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _collect_in_order(self, comm, ctx, tag_base, task, my_class):
        """Blocking collection, columns visited in index order (the
        fault-free fast path: the first 2k-1 columns are the standard
        evaluation points, so interpolation uses the precomputed W^T
        structure whenever possible)."""
        collected: dict[int, LimbVector] = {}
        for j in range(self.n_columns()):
            if len(collected) == self.plan.q:
                break
            members = self.column_members(j)
            if comm.withdrawn_ranks(members, task=task):
                continue
            src = members[my_class % self.g2]
            if src == comm.rank:
                block = comm.heap.get(f"_kept_ascent.{task}")
                if block is not None:
                    collected[j] = block
                continue
            try:
                collected[j] = comm.recv(
                    src, tag=self._tag(tag_base, 0, ctx), abort_check=task
                )
            except PeerDead:
                continue
        return collected

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _collect_eager(self, comm, ctx, tag_base, task, my_class):
        """Straggler-mitigating collection: physically drain every live
        column's result, then *absorb* (wait for, in virtual time) only
        the ``2k-1`` with the earliest attached clocks.  A delayed column
        (the paper's third fault category) is simply never waited on —
        the classic latency benefit of coded computation."""
        from repro.machine.errors import DeadlockError

        raw: dict[int, object] = {}
        kept_block = comm.heap.get(f"_kept_ascent.{task}")
        my_col = self._my_column(comm)
        pending = set(range(self.n_columns()))
        if my_col in pending:
            pending.discard(my_col)
        while pending:
            j = min(pending)
            members = self.column_members(j)
            if comm.withdrawn_ranks(members, task=task):
                pending.discard(j)
                continue
            src = members[my_class % self.g2]
            if src == comm.rank:
                pending.discard(j)
                continue
            try:
                raw[j] = comm.recv_raw(
                    src, tag=self._tag(tag_base, 0, ctx), abort_check=task
                )
                pending.discard(j)
            except (PeerDead, DeadlockError):
                pending.discard(j)
        # Rank the physical arrivals by virtual readiness and absorb the
        # earliest 2k-1 (the kept local block is free).
        collected: dict[int, LimbVector] = {}
        if kept_block is not None:
            collected[my_col] = kept_block
        order = sorted(
            raw, key=lambda j: (raw[j].clock.f + raw[j].clock.bw + raw[j].clock.l)
        )
        for j in order:
            if len(collected) == self.plan.q:
                break
            collected[j] = comm.absorb(raw[j])
        return collected

    # repro-lint: in-phase -- runs inside the caller's phase context
    def _interpolate_with(self, comm, w_t, result_blocks, child_offset):
        coeffs = apply_matrix_to_blocks(w_t.rows, result_blocks)
        comm.charge_flops(matrix_apply_flops(w_t.rows, len(result_blocks[0])))
        out = [0] * (2 * self.plan.k * child_offset)
        for m, block in enumerate(coeffs):
            off = m * child_offset
            for t, v in enumerate(block):
                out[off + t] += v
        comm.charge_flops(len(coeffs) * len(coeffs[0]))
        return LimbVector(out, result_blocks[0].base_bits)

    # -- assembly ------------------------------------------------------------------
    def multiply(self, a: int, b: int, raise_on_error: bool = False) -> MultiplyOutcome:
        """As the base class, but rank errors are expected (hard faults
        are part of normal operation) — only standard ranks' results
        matter, and a missing one is an error."""
        outcome = super().multiply(a, b, raise_on_error=False)
        fatal = {
            r: e
            for r, e in outcome.run.errors.items()
            if not self._is_tolerated(r, e)
        }
        if fatal and raise_on_error:
            rank, exc = sorted(fatal.items())[0]
            raise MachineError(f"rank {rank} failed fatally: {exc!r}") from exc
        if outcome.run.errors and not fatal:
            # Every error is a tolerated hard fault, but the base class
            # skipped assembly (it only assembles clean runs).  The
            # product is still owed: assemble from the standard slices,
            # surfacing FaultToleranceExceeded when one is missing — never
            # return a silent zero for a run the code claims to cover.
            try:
                product = self._assemble(outcome.run.results)
            except MachineError:
                if raise_on_error:
                    raise
            else:
                sign = -1 if (a < 0) != (b < 0) else 1
                outcome = MultiplyOutcome(
                    product=sign * product, run=outcome.run, plan=outcome.plan
                )
        return outcome

    def _is_tolerated(self, rank: int, exc: BaseException) -> bool:
        from repro.machine.errors import HardFault

        return isinstance(exc, HardFault)

    def _assemble(self, results: list[Any]) -> int:
        slices = results[: self.plan.p]
        if any(s is None for s in slices):
            missing = [r for r, s in enumerate(slices) if s is None]
            raise FaultToleranceExceeded(
                f"standard ranks {missing} produced no result slice"
            )
        from repro.core.layout import CyclicLayout

        return CyclicLayout(self.plan.p).collect(slices).to_int()
