"""Linear (Vandermonde) column coding — paper Section 4.1, Figure 1.

``f`` rows of code processors are appended below the ``P/(2k-1) × (2k-1)``
grid; the code processor in code-row ``i`` of column ``j`` stores the
weighted sum ``sum_l eta_i**l * state_l`` over the column's standard
processors.  The code is created (here: refreshed) at every protocol
checkpoint — the paper initiates "a new code creation process" at each BFS
step — with an ``f``-reduce costing ``O(f*M)`` (Lemma 2.5).  When a
standard processor dies, the survivors and code processors reconstruct its
full state on the replacement with one more reduce.

A processor's recoverable *state* is a list of limb vectors (operand
slices, accumulated results, loop position); shapes are identical across a
column (SPMD), so states add and scale like vectors.
:class:`LinearCodedState` flattens/unflattens state against a schema so
the whole memory image encodes in one shot.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd

from repro.bigint.limbs import LimbVector
from repro.coding.erasure import recovery_coefficients
from repro.coding.linear import SystematicCode
from repro.machine import collectives
from repro.machine.errors import MachineError

__all__ = ["LinearCodedState", "ColumnCode"]

# Re-exported from the tag registry for existing importers.
from repro.machine.tags import (  # noqa: E402
    TAG_ENCODE,
    TAG_RECOVER,
    TAG_STATE_META,
)


@dataclass(frozen=True)
class LinearCodedState:
    """A flattened processor state: one limb vector plus its schema."""

    data: LimbVector
    schema: tuple[int, ...]  # lengths of the original vectors, in order

    @classmethod
    def flatten(cls, vectors: list[LimbVector]) -> "LinearCodedState":
        if not vectors:
            raise ValueError("state must contain at least one vector")
        return cls(
            data=LimbVector.concat(vectors),
            schema=tuple(len(v) for v in vectors),
        )

    def unflatten(self) -> list[LimbVector]:
        out = []
        offset = 0
        for length in self.schema:
            out.append(self.data.take(offset, length))
            offset += length
        if offset != len(self.data):
            raise ValueError("schema does not cover the flattened data")
        return out


class ColumnCode:
    """Encode/recover protocol for one grid column.

    Parameters
    ----------
    column:
        Global ranks of the column's standard processors, class-ordered.
    code_ranks:
        Global ranks of the ``f`` code processors shadowing this column.
    """

    def __init__(self, column: list[int], code_ranks: list[int]):
        if not column or not code_ranks:
            raise ValueError("column and code_ranks must be non-empty")
        if set(column) & set(code_ranks):
            raise ValueError("column and code ranks overlap")
        self.column = list(column)
        self.code_ranks = list(code_ranks)
        self.f = len(code_ranks)
        self.code = SystematicCode(k=len(column), f=self.f)

    # -- encoding -------------------------------------------------------------
    # repro-lint: in-phase -- runs inside the caller's phase context
    def encode(self, comm, state: LimbVector | None, epoch: int) -> LimbVector | None:
        """Code-creation round (one ``f``-reduce, Lemma 2.5).

        Standard members pass their flattened ``state``; code members pass
        ``None`` and receive their stored weighted sum.  Every member of
        ``column + code_ranks`` must call this with the same ``epoch``.
        """
        members = self.column + self.code_ranks
        if comm.rank not in members:
            raise MachineError(f"rank {comm.rank} is not in this column")
        sub = comm.sub(members)
        if comm.rank in self.column:
            cls = self.column.index(comm.rank)
            if state is None:
                raise ValueError("standard members must supply their state")
            contributions = {
                len(self.column) + i: state * int(self.code.E[i][cls])
                for i in range(self.f)
            }
        else:
            # Code members contribute the additive identity; they cannot
            # know the width ahead of time, so the reduce op skips None.
            contributions = {len(self.column) + i: None for i in range(self.f)}
        result = collectives.t_reduce(
            sub,
            contributions,
            op=_add_skip_none,
            tag=TAG_ENCODE + 16 * (epoch % 32),
        )
        return result if comm.rank in self.code_ranks else None

    # -- recovery ----------------------------------------------------------------
    # repro-lint: in-phase -- runs inside the caller's phase context
    def recover(
        self,
        comm,
        dead: list[int],
        my_state: LimbVector | None,
        my_code_word: LimbVector | None,
        epoch: int,
        excluded: list[int] | None = None,
    ) -> LimbVector | None:
        """Reconstruct the dead members' states on their replacements.

        Every member of the column group (standard + code, replacements
        included) calls this.  Survivor contributions are scaled by the
        exact erasure-decoding coefficients (denominators cleared first);
        each replacement receives one reduce and divides once.  Returns
        the reconstructed state at replacements, ``None`` elsewhere.

        Raises ``MachineError`` when more than ``f`` members are lost.
        """
        if len(dead) > self.f:
            raise MachineError(
                f"{len(dead)} faults in one column exceed the code distance "
                f"(f={self.f})"
            )
        members = self.column + self.code_ranks
        for d in dead:
            if d not in members:
                raise MachineError(f"dead rank {d} is not in this column")
        sub = comm.sub(members)
        k = len(self.column)
        dead_pos = [members.index(d) for d in dead]
        # "Excluded" members are alive but hold no valid data (e.g. a code
        # processor that failed and was replaced since the last encode):
        # they participate in the reduces but are never selected as
        # survivors.  All participants must pass the same exclusion set.
        excluded_pos = {members.index(r) for r in (excluded or []) if r in members}
        unusable = set(dead_pos) | excluded_pos
        survivors_pos = [i for i in range(len(members)) if i not in unusable][:k]
        if len(survivors_pos) < k:
            raise MachineError(
                f"only {len(survivors_pos)} usable members remain in the "
                f"column; {k} needed (beyond the code distance)"
            )
        coeff_map = recovery_coefficients(
            self.code,
            survivors_pos,
            [p for p in dead_pos if p < k],
        )
        my_pos = members.index(comm.rank)
        my_value = my_state if my_pos < k else my_code_word
        out: LimbVector | None = None
        for d in dead:
            d_pos = members.index(d)
            if d_pos >= k:
                # A lost code word is re-encoded at the next checkpoint,
                # not reconstructed.
                continue
            coeffs = coeff_map[d_pos]
            denom = 1
            for c in coeffs.values():
                denom = denom * c.denominator // gcd(denom, c.denominator)
            if my_pos in coeffs:
                if my_value is None:
                    raise MachineError(
                        f"surviving rank {comm.rank} has no state to contribute"
                    )
                scaled = my_value * int(Fraction(coeffs[my_pos]) * denom)
            else:
                scaled = None  # replacements and unused survivors
            root = members.index(d)
            result = collectives.t_reduce(
                sub,
                {root: scaled},
                op=_add_skip_none,
                tag=TAG_RECOVER + 16 * (epoch % 32) + 2 * d_pos,
            )
            if comm.rank == d:
                if result is None:
                    raise MachineError("recovery reduce produced no data")
                out = result.exact_div(denom) if denom != 1 else result
        return out


def _add_skip_none(a, b):
    """Addition treating ``None`` as the additive identity (used so that
    code processors and replacements can join reduces without knowing the
    state width)."""
    if a is None:
        return b
    if b is None:
        return a
    return a + b
