"""The bilinear form ⟨U, V, W⟩ of Toom-Cook-k (paper Section 2.2).

For evaluation points ``{(x_i, h_i)}``:

- the **evaluation matrix** ``U = V`` has rows
  ``[h_i^(k-1) x_i^0, h_i^(k-2) x_i^1, ..., h_i^0 x_i^(k-1)]`` — it maps the
  ``k`` digits of an operand to its ``2k-1`` (or ``2k-1+f``) evaluations;
- the **full evaluation matrix** does the same for the degree-``2k-2``
  product polynomial (width ``2k-1``) — the paper defines ``(W^T)^{-1}`` to
  be exactly this matrix on a square point set;
- the **interpolation matrix** ``W^T`` is its inverse, mapping pointwise
  products back to product-polynomial coefficients.

All matrices are exact (:class:`~repro.util.rational.FractionMatrix`);
``interpolation_matrix_for_points`` builds ``W^T`` for *any* ``2k-1``-subset
of an extended point set — the on-the-fly interpolation of the
fault-tolerant algorithm's recovery path (Section 4.2 "Correctness").
"""

from __future__ import annotations

from repro.bigint.evalpoints import EvalPoint, points_pairwise_distinct, toom_points
from repro.util.rational import FractionMatrix
from repro.util.validation import check_positive

__all__ = [
    "evaluation_matrix",
    "full_evaluation_matrix",
    "interpolation_matrix",
    "interpolation_matrix_for_points",
    "toom_operators",
]


def evaluation_matrix(points: list[EvalPoint], width: int) -> FractionMatrix:
    """Evaluation matrix of ``points`` for polynomials of degree < ``width``.

    Row ``i`` is ``[h_i^(width-1-j) * x_i^j for j in range(width)]`` — the
    homogeneous Vandermonde structure of the paper's ``U``/``V``.
    """
    check_positive("width", width)
    if not points:
        raise ValueError("points must be non-empty")
    rows = []
    for x, h in points:
        rows.append([h ** (width - 1 - j) * x**j for j in range(width)])
    return FractionMatrix(rows)


def full_evaluation_matrix(points: list[EvalPoint], k: int) -> FractionMatrix:
    """Evaluation matrix for the product polynomial (width ``2k-1``)."""
    check_positive("k", k)
    return evaluation_matrix(points, 2 * k - 1)


def interpolation_matrix(points: list[EvalPoint], k: int) -> FractionMatrix:
    """``W^T`` for a square set of exactly ``2k-1`` points.

    Raises ``ValueError`` if the points are not pairwise distinct (the
    evaluation matrix would be singular — Theorem 2.1).
    """
    check_positive("k", k)
    if len(points) != 2 * k - 1:
        raise ValueError(
            f"interpolation needs exactly {2 * k - 1} points, got {len(points)}"
        )
    return interpolation_matrix_for_points(points, 2 * k - 1)


def interpolation_matrix_for_points(
    points: list[EvalPoint], width: int
) -> FractionMatrix:
    """Inverse evaluation matrix for any ``width`` pairwise-distinct points
    — used on the fly when faults leave an arbitrary surviving subset."""
    if len(points) != width:
        raise ValueError(f"need exactly {width} points, got {len(points)}")
    if not points_pairwise_distinct(points):
        raise ValueError(f"points are not pairwise distinct: {points}")
    return evaluation_matrix(points, width).inv()


def toom_operators(
    k: int, points: list[EvalPoint] | None = None
) -> tuple[FractionMatrix, FractionMatrix, FractionMatrix]:
    """The ⟨U, V, W^T⟩ triple of Toom-Cook-k.

    ``points`` may supply a custom set of ``>= 2k-1`` points (the first
    ``2k-1`` define ``W^T``; extras — the polynomial code's redundant
    points — appear only in ``U``/``V``).
    """
    check_positive("k", k)
    if points is None:
        points = toom_points(k)
    m = 2 * k - 1
    if len(points) < m:
        raise ValueError(f"need at least {m} points, got {len(points)}")
    if not points_pairwise_distinct(points):
        raise ValueError(f"points are not pairwise distinct: {points}")
    u = evaluation_matrix(points, k)
    w_t = interpolation_matrix(points[:m], k)
    return u, u, w_t
