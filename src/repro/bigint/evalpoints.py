"""Homogeneous evaluation points for Toom-Cook.

Following Zanoni's homogeneous notation (Remark 2.2), an evaluation point
is a pair ``(x, h)``; the classic point "infinity" is ``(1, 0)``.  Two
points are equivalent iff they are projectively equal (``x1*h2 == x2*h1``),
and Theorem 2.1 guarantees the evaluation matrix of any ``k`` pairwise
*distinct* points is invertible.

:func:`toom_points` produces the standard set — for Toom-3 this is
``{0, 1, -1, 2, ∞}``, the most commonly used choice (Section 1.1) — and
:func:`extended_toom_points` appends the ``f`` redundant points of the
polynomial code (Section 4.2), continuing the same small-magnitude
sequence so the code stays numerically cheap.
"""

from __future__ import annotations

from typing import Iterator

from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "EvalPoint",
    "finite_point_sequence",
    "toom_points",
    "extended_toom_points",
    "points_pairwise_distinct",
    "projectively_equal",
]

EvalPoint = tuple[int, int]

#: The point at infinity in homogeneous coordinates.
INFINITY: EvalPoint = (1, 0)


def projectively_equal(p: EvalPoint, q: EvalPoint) -> bool:
    """Projective equality: ``(x1,h1) ~ (x2,h2)`` iff ``x1*h2 == x2*h1``."""
    return p[0] * q[1] == q[0] * p[1]


def points_pairwise_distinct(points: list[EvalPoint]) -> bool:
    """True when all points are pairwise projectively distinct and valid
    (not the degenerate ``(0, 0)``)."""
    for p in points:
        if p == (0, 0):
            return False
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            if projectively_equal(points[i], points[j]):
                return False
    return True


def finite_point_sequence() -> Iterator[EvalPoint]:
    """The canonical small-magnitude finite points: 0, 1, -1, 2, -2, 3, ..."""
    yield (0, 1)
    v = 1
    while True:
        yield (v, 1)
        yield (-v, 1)
        v += 1


def toom_points(k: int) -> list[EvalPoint]:
    """The standard ``2k-1`` evaluation points of Toom-Cook-k.

    ``2k-2`` small finite points followed by infinity; for ``k = 3`` the
    sequence draws 0, 1, -1, 2 and appends ∞ — exactly the common
    ``{0, 1, -1, 2, ∞}``.
    """
    check_positive("k", k)
    if k == 1:
        return [(0, 1)]
    m = 2 * k - 1
    seq = finite_point_sequence()
    points = [next(seq) for _ in range(m - 1)]
    points.append(INFINITY)
    return points


def extended_toom_points(k: int, f: int) -> list[EvalPoint]:
    """``2k-1+f`` points: the standard set plus ``f`` redundant points
    (the polynomial code of Section 4.2).

    The first ``2k-1`` entries are exactly :func:`toom_points`, so a
    fault-free run uses the standard interpolation; the extra points
    continue the finite sequence.
    """
    check_positive("k", k)
    check_non_negative("f", f)
    base = toom_points(k)
    if f == 0:
        return base
    seq = finite_point_sequence()
    existing = list(base)
    extra: list[EvalPoint] = []
    while len(extra) < f:
        candidate = next(seq)
        if all(not projectively_equal(candidate, p) for p in existing):
            extra.append(candidate)
            existing.append(candidate)
    return base + extra
