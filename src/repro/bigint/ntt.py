"""Number-theoretic-transform multiplication — the FFT-based comparator.

The paper's introduction positions Toom-Cook against asymptotically
faster FFT-based methods that "often suffer from large hidden constants"
(Section 1).  To measure that trade-off we implement the standard NTT
convolution multiplier: digits are convolved in ``O(n log n)`` ring
operations over ``Z_p`` for an NTT-friendly prime ``p = c*2^a + 1``,
with digit width chosen so coefficient sums cannot overflow ``p``.

The flop accounting counts *machine-word* operations for the 31-bit
modular arithmetic (see :func:`modular_op_costs`) so the numbers are
directly comparable with the schoolbook/Toom accounting — those
reduction-and-multiword constants are exactly the FFT method's "hidden
constants", and they put the measured Toom/NTT crossover at tens of
thousands of bits in this model, matching the paper's qualitative story.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.validation import check_positive
from repro.util.words import digits_to_int, int_to_digits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.kernels import KernelCounters

__all__ = ["NttMultiplier", "DEFAULT_PRIME", "ntt", "intt", "modular_op_costs"]

#: Proth prime 15 * 2^27 + 1 (a classic NTT modulus) with primitive root 31.
DEFAULT_PRIME = 15 * 2**27 + 1
DEFAULT_ROOT = 31


def _bit_reverse_permute(a: list[int]) -> None:
    n = len(a)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            a[i], a[j] = a[j], a[i]


def modular_op_costs(prime: int, word_bits: int) -> tuple[int, int]:
    """Word-operation costs of one modular multiply and one modular
    add/sub for residues of ``prime`` on a ``word_bits`` machine.

    A residue spans ``rw = ceil(bits(prime)/word_bits)`` words; a modular
    multiply is a ``rw x rw`` schoolbook product plus a reduction pass
    (``2 rw^2 + rw``), an add/sub is ``rw`` word ops with the conditional
    correction folded in.  These constants ARE the FFT method's "large
    hidden constants" (paper Section 1) in our cost model.
    """
    rw = -(-prime.bit_length() // word_bits)
    return 2 * rw * rw + rw, rw


def ntt(
    a: list[int],
    prime: int = DEFAULT_PRIME,
    root: int = DEFAULT_ROOT,
    inverse: bool = False,
    word_bits: int = 16,
) -> tuple[list[int], int]:
    """In-place-style iterative Cooley-Tukey NTT over ``Z_prime``.

    Length must be a power of two dividing the prime's 2-adic order.
    Returns ``(transformed, word_flops)`` — costs counted in machine-word
    operations (see :func:`modular_op_costs`), comparable with the
    Toom/schoolbook accounting.
    """
    n = len(a)
    if n & (n - 1):
        raise ValueError("NTT length must be a power of two")
    if (prime - 1) % n:
        raise ValueError(f"{n} does not divide the order of the multiplicative group")
    mul_cost, add_cost = modular_op_costs(prime, word_bits)
    butterfly_cost = 2 * mul_cost + 2 * add_cost  # a*w, twiddle update, +, -
    a = [v % prime for v in a]
    _bit_reverse_permute(a)
    flops = 0
    length = 2
    while length <= n:
        w_len = pow(root, (prime - 1) // length, prime)
        if inverse:
            w_len = pow(w_len, prime - 2, prime)
        half = length // 2
        for start in range(0, n, length):
            w = 1
            for j in range(start, start + half):
                u = a[j]
                v = a[j + half] * w % prime
                a[j] = (u + v) % prime
                a[j + half] = (u - v) % prime
                w = w * w_len % prime
                flops += butterfly_cost
        length <<= 1
    if inverse:
        n_inv = pow(n, prime - 2, prime)
        a = [v * n_inv % prime for v in a]
        flops += n * mul_cost
    return a, flops


def intt(
    a: list[int],
    prime: int = DEFAULT_PRIME,
    root: int = DEFAULT_ROOT,
    word_bits: int = 16,
) -> tuple[list[int], int]:
    """Inverse NTT."""
    return ntt(a, prime, root, inverse=True, word_bits=word_bits)


class NttMultiplier:
    """FFT-based long multiplication via NTT convolution.

    Parameters
    ----------
    digit_bits:
        Width of each coefficient digit.  Must satisfy
        ``n_coeffs * (2^digit_bits - 1)^2 < prime`` for the largest
        supported input; the default 8 supports products up to
        ``2^a / 2^16`` coefficients under the default prime.
    """

    def __init__(
        self,
        digit_bits: int = 8,
        prime: int = DEFAULT_PRIME,
        root: int = DEFAULT_ROOT,
        word_bits: int = 16,
        counters: "KernelCounters | None" = None,
    ):
        check_positive("digit_bits", digit_bits)
        check_positive("word_bits", word_bits)
        self.digit_bits = digit_bits
        self.prime = prime
        self.root = root
        self.word_bits = word_bits
        self.counters = counters

    def max_coefficients(self) -> int:
        """Largest convolution length the modulus supports without
        coefficient overflow (and within the prime's 2-adic order)."""
        per_term = (2**self.digit_bits - 1) ** 2
        n = 1
        while (
            2 * n * per_term < self.prime and (self.prime - 1) % (2 * n) == 0
        ):
            n *= 2
        return n

    def multiply(self, a: int, b: int) -> tuple[int, int]:
        """Return ``(a*b, flops)``."""
        sign = -1 if (a < 0) != (b < 0) else 1
        a, b = abs(a), abs(b)
        if a == 0 or b == 0:
            return 0, 0
        da = int_to_digits(a, self.digit_bits)
        db = int_to_digits(b, self.digit_bits)
        out_len = len(da) + len(db) - 1
        n = 1
        while n < out_len:
            n *= 2
        if n > self.max_coefficients():
            raise ValueError(
                f"operands need {n} coefficients; modulus supports "
                f"{self.max_coefficients()} (use a larger prime or digits)"
            )
        fa, f1 = ntt(da + [0] * (n - len(da)), self.prime, self.root, word_bits=self.word_bits)
        fb, f2 = ntt(db + [0] * (n - len(db)), self.prime, self.root, word_bits=self.word_bits)
        fc = [x * y % self.prime for x, y in zip(fa, fb)]
        mul_cost, _ = modular_op_costs(self.prime, self.word_bits)
        flops = f1 + f2 + n * mul_cost
        c, f3 = intt(fc, self.prime, self.root, word_bits=self.word_bits)
        flops += f3
        product = digits_to_int(c[:out_len], self.digit_bits)
        flops += out_len  # carry pass
        if self.counters is not None:
            # Limb multiplications: each modular multiply is an rw x rw
            # schoolbook product (modular_op_costs).  The three transforms
            # do 2 multiplies per butterfly ((n/2) log2 n butterflies
            # each), the pointwise pass n, the inverse scaling n.
            rw = -(-self.prime.bit_length() // self.word_bits)
            stages = n.bit_length() - 1
            mod_muls = 3 * 2 * (n // 2) * stages + 2 * n
            self.counters.add_limb_mults(mod_muls * rw * rw)
            # The FFT's divide-and-conquer depth: log2(n) stages.
            self.counters.note_depth(stages)
        return sign * product, flops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NttMultiplier(digit_bits={self.digit_bits})"
