"""Unbalanced Toom-Cook-(k1, k2) (paper Section 1.1; Zanoni 2010).

The extended Toom-Cook family splits the two operands *differently*:
``a`` into ``k1`` digits and ``b`` into ``k2``, evaluating both at
``k1 + k2 - 1`` points (the product polynomial has degree
``(k1-1) + (k2-1)``).  Toom-Cook-(3,2) is the classic "Toom-2.5".
Unbalanced variants win when the operands' sizes are themselves
unbalanced: the split base is chosen so each operand's digits have
similar width, keeping the pointwise sub-products square.
"""

from __future__ import annotations

from fractions import Fraction

from repro.bigint.evalpoints import (
    EvalPoint,
    INFINITY,
    finite_point_sequence,
    points_pairwise_distinct,
)
from repro.bigint.matrices import evaluation_matrix, interpolation_matrix_for_points
from repro.util.rational import mat_vec
from repro.util.validation import check_positive
from repro.util.words import bits_to_words, int_to_digits

__all__ = ["UnbalancedToomCook", "unbalanced_points"]


def unbalanced_points(k1: int, k2: int) -> list[EvalPoint]:
    """The standard ``k1 + k2 - 1`` points: small finite values then ∞."""
    m = k1 + k2 - 1
    seq = finite_point_sequence()
    points = [next(seq) for _ in range(m - 1)]
    points.append(INFINITY)
    assert points_pairwise_distinct(points)
    return points


class UnbalancedToomCook:
    """Sequential Toom-Cook-(k1, k2) multiplier.

    Parameters
    ----------
    k1, k2:
        Split counts for the first and second operand (``k1 >= k2 >= 1``,
        ``k1 >= 2``; ``(k, k)`` degenerates to balanced Toom-Cook-k, and
        ``(k, 1)`` to a digit-by-operand schoolbook row).
    threshold_bits:
        Single-flop multiply width (Algorithm 1's ``s``).
    """

    def __init__(self, k1: int, k2: int, threshold_bits: int = 64, inner=None):
        """``inner`` optionally supplies the multiplier for the pointwise
        sub-products (e.g. a balanced :class:`~repro.bigint.toomcook.ToomCook`
        — real libraries pick the split shape per recursion level by the
        operand ratio, and the sub-products of an unbalanced top split are
        themselves balanced).  Default: recurse unbalanced."""
        if k1 < 2 or k2 < 1 or k2 > k1:
            raise ValueError("require k1 >= 2 and 1 <= k2 <= k1")
        check_positive("threshold_bits", threshold_bits)
        self.k1 = k1
        self.k2 = k2
        self.inner = inner
        self.threshold_bits = threshold_bits
        self.m = k1 + k2 - 1
        self.points = unbalanced_points(k1, k2)
        self.U = evaluation_matrix(self.points, k1)
        self.V = evaluation_matrix(self.points, k2)
        self.W_T = interpolation_matrix_for_points(self.points, self.m)
        self._direct_bits = max(threshold_bits, 8 * k1)

    # -- public ---------------------------------------------------------------
    def multiply(self, a: int, b: int) -> tuple[int, int]:
        """Return ``(a*b, flops)``.  Pass the larger operand first for the
        intended digit balance (it still works either way)."""
        sign = -1 if (a < 0) != (b < 0) else 1
        product, flops = self._mul(abs(a), abs(b))
        return sign * product, flops

    # -- recursion ----------------------------------------------------------------
    def _mul(self, a: int, b: int) -> tuple[int, int]:
        if a == 0 or b == 0:
            return 0, 0
        bits = max(a.bit_length(), b.bit_length())
        if bits <= self.threshold_bits:
            return a * b, 1
        if bits <= self._direct_bits:
            wa = bits_to_words(a.bit_length(), self.threshold_bits)
            wb = bits_to_words(b.bit_length(), self.threshold_bits)
            return a * b, 2 * wa * wb

        # Shared base: both operands' digit widths as equal as possible.
        base_bits = max(
            -(-max(a.bit_length(), 1) // self.k1),
            -(-max(b.bit_length(), 1) // self.k2),
        )
        da = int_to_digits(a, base_bits, count=self.k1)
        db = int_to_digits(b, base_bits, count=self.k2)
        digit_words = bits_to_words(base_bits, self.threshold_bits)

        a_evals = mat_vec(self.U.rows, da)
        b_evals = mat_vec(self.V.rows, db)
        flops = 2 * self._nnz(self.U) * digit_words
        flops += 2 * self._nnz(self.V) * digit_words

        c_evals = []
        for ai, bi in zip(a_evals, b_evals):
            ai, bi = int(ai), int(bi)
            if self.inner is not None:
                p, fl = self.inner.multiply(ai, bi)
                c_evals.append(p)
            elif self.k2 == 1:
                # (k, 1) splits only the first operand, so recursion would
                # never shrink the second: one schoolbook-style layer.
                wa = bits_to_words(abs(ai).bit_length(), self.threshold_bits)
                wb = bits_to_words(abs(bi).bit_length(), self.threshold_bits)
                p, fl = ai * bi, 2 * wa * wb
                c_evals.append(p)
            else:
                sub_sign = -1 if (ai < 0) != (bi < 0) else 1
                p, fl = self._mul(abs(ai), abs(bi))
                c_evals.append(sub_sign * p)
            flops += fl

        coeffs = mat_vec(self.W_T.rows, c_evals)
        product_words = 2 * digit_words
        flops += 2 * self._nnz(self.W_T) * product_words

        acc = 0
        for i, c in enumerate(coeffs):
            c = Fraction(c)
            if c.denominator != 1:
                raise ArithmeticError(
                    f"non-integer interpolation coefficient {c}"
                )
            acc += int(c) << (i * base_bits)
        flops += self.m * product_words
        return acc, flops

    @staticmethod
    def _nnz(matrix) -> int:
        return sum(1 for row in matrix.rows for v in row if v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnbalancedToomCook(k1={self.k1}, k2={self.k2})"
