"""Toom-Cook-k with Lazy Interpolation (Algorithm 2; Bermudo Mera et al.).

The inputs are split into ``k**l`` digits *once*, up front; every
recursive level works blockwise on limb vectors and all carry resolution
is deferred to a single pass at the very end.  As Claim 2.1 shows, the
depth-``l`` run is exactly an ``l``-variate polynomial multiplication over
the evaluation-point grid ``S^l`` — which is what makes the parallel
BFS-DFS traversal (and the polynomial fault-tolerance code) compose
cleanly with it.
"""

from __future__ import annotations

from repro.bigint.blockops import apply_matrix_to_blocks, matrix_apply_flops
from repro.bigint.evalpoints import EvalPoint, toom_points
from repro.bigint.limbs import LimbVector
from repro.bigint.matrices import toom_operators
from repro.bigint.split import lazy_depth, split_lazy
from repro.util.validation import check_positive

__all__ = ["LazyToomCook"]


class LazyToomCook:
    """Sequential Toom-Cook-k with lazy interpolation.

    The recursion depth is chosen automatically from the operand size
    unless ``depth`` is forced; each leaf multiplies one pair of digits
    (single machine words, one flop each — Algorithm 2 line 12).
    """

    def __init__(
        self,
        k: int,
        threshold_bits: int = 64,
        points: list[EvalPoint] | None = None,
    ):
        if k < 2:
            raise ValueError("Toom-Cook requires k >= 2")
        check_positive("threshold_bits", threshold_bits)
        self.k = k
        self.threshold_bits = threshold_bits
        self.points = list(points) if points is not None else toom_points(k)
        self.U, self.V, self.W_T = toom_operators(k, self.points)

    def multiply(self, a: int, b: int, depth: int | None = None) -> tuple[int, int]:
        """Return ``(a*b, flops)``."""
        sign = -1 if (a < 0) != (b < 0) else 1
        a, b = abs(a), abs(b)
        if a == 0 or b == 0:
            return 0, 0
        l = lazy_depth(a, b, self.k, self.threshold_bits) if depth is None else depth
        if l < 0:
            raise ValueError("depth must be non-negative")
        va, vb, base_bits = split_lazy(a, b, self.k, l)
        c, flops = self.multiply_blocks(va, vb, l)
        product = c.to_int()
        flops += len(c)  # final carry pass (line 16)
        return sign * product, flops

    def multiply_blocks(
        self, va: LimbVector, vb: LimbVector, depth: int
    ) -> tuple[LimbVector, int]:
        """Blockwise product of two ``k**depth``-limb vectors.

        Returns the ``2*k**depth - 1``-limb product polynomial (carries
        unresolved) and the flop count.  This is the code path the
        parallel algorithm runs at its leaves.
        """
        k = self.k
        if len(va) != k**depth or len(vb) != k**depth:
            raise ValueError(
                f"expected {k**depth} limbs, got {len(va)} and {len(vb)}"
            )
        if depth == 0:
            return LimbVector([va[0] * vb[0]], va.base_bits), 1

        blocks_a = va.split_blocks(k)
        blocks_b = vb.split_blocks(k)
        block_len = k ** (depth - 1)

        # Blockwise evaluation (Algorithm 2 lines 6-7).
        a_evals = apply_matrix_to_blocks(self.U.rows, blocks_a)
        b_evals = apply_matrix_to_blocks(self.V.rows, blocks_b)
        flops = matrix_apply_flops(self.U.rows, block_len)
        flops += matrix_apply_flops(self.V.rows, block_len)

        # Recursive pointwise products (lines 8-14).
        c_evals: list[LimbVector] = []
        for ea, eb in zip(a_evals, b_evals):
            c, fl = self.multiply_blocks(ea, eb, depth - 1)
            c_evals.append(c)
            flops += fl

        # Blockwise interpolation (line 15).
        coeffs = apply_matrix_to_blocks(self.W_T.rows, c_evals)
        flops += matrix_apply_flops(self.W_T.rows, len(c_evals[0]))

        # Overlap-add reassembly: result[m*k^(d-1) + t] += coeffs[m][t].
        out = [0] * (2 * k**depth - 1)
        for m, block in enumerate(coeffs):
            off = m * block_len
            for t, v in enumerate(block):
                out[off + t] += v
        flops += len(coeffs) * len(coeffs[0])
        return LimbVector(out, va.base_bits), flops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LazyToomCook(k={self.k}, threshold_bits={self.threshold_bits})"
