"""Multivariate polynomials and their evaluation maps (Claims 2.1-2.3).

Claim 2.1: a depth-``l`` lazy Toom-Cook-k run *is* a multiplication of two
``l``-variate polynomials in ``Poly_{k,l}`` (every variable's power below
``k``) evaluated over the grid ``S^l``.  This module makes that view
concrete:

- :class:`MultiPoly` — sparse exact multivariate polynomials with bounded
  per-variable degree, supporting multiplication and (homogeneous-pair)
  evaluation;
- :func:`monomials` / :func:`evaluation_matrix_multivariate` — the
  evaluation map of a point set in ``(F^2)^l`` for ``Poly_{r,l}``, whose
  injectivity is exactly the validity condition of Claim 2.2 and the
  ``(r,l)``-general-position test of Section 6.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.bigint.evalpoints import EvalPoint
from repro.util.rational import FractionMatrix
from repro.util.validation import check_positive

__all__ = [
    "MultiPoly",
    "monomials",
    "evaluation_matrix_multivariate",
    "grid_points",
]

Exponent = tuple[int, ...]


def monomials(r: int, l: int) -> list[Exponent]:
    """All exponent tuples of ``Poly_{r,l}`` in mixed-radix order: the
    exponent of variable ``i`` carries weight ``r**i``, matching the digit
    layout of lazy Toom-Cook (variable ``i`` is the level-``i`` split)."""
    check_positive("r", r)
    check_positive("l", l)
    out = []
    for idx in range(r**l):
        e = []
        v = idx
        for _ in range(l):
            e.append(v % r)
            v //= r
        out.append(tuple(e))
    return out


def grid_points(points: Sequence[EvalPoint], l: int) -> list[tuple[EvalPoint, ...]]:
    """The evaluation grid ``S^l`` of Claim 2.1 (mixed-radix order: the
    level-0 point varies fastest)."""
    check_positive("l", l)
    pts = list(points)
    out = []
    for idx in range(len(pts) ** l):
        coords = []
        v = idx
        for _ in range(l):
            coords.append(pts[v % len(pts)])
            v //= len(pts)
        out.append(tuple(coords))
    return out


class MultiPoly:
    """A sparse exact polynomial in ``l`` variables."""

    def __init__(self, coeffs: Mapping[Exponent, int | Fraction], nvars: int):
        check_positive("nvars", nvars)
        clean: dict[Exponent, Fraction] = {}
        for exp, c in coeffs.items():
            if len(exp) != nvars:
                raise ValueError(f"exponent {exp} has wrong arity (nvars={nvars})")
            if any(e < 0 for e in exp):
                raise ValueError(f"negative exponent in {exp}")
            c = Fraction(c)
            if c:
                clean[tuple(exp)] = c
        self.coeffs = clean
        self.nvars = nvars

    # -- constructors ------------------------------------------------------
    @classmethod
    def zero(cls, nvars: int) -> "MultiPoly":
        return cls({}, nvars)

    @classmethod
    def from_vector(
        cls, vector: Iterable[int | Fraction], r: int, l: int
    ) -> "MultiPoly":
        """Coefficient vector (mixed-radix monomial order) → polynomial."""
        vec = list(vector)
        mons = monomials(r, l)
        if len(vec) != len(mons):
            raise ValueError(f"vector length {len(vec)} != {len(mons)} monomials")
        return cls(dict(zip(mons, vec)), l)

    def to_vector(self, r: int) -> list[Fraction]:
        """Coefficient vector over the ``Poly_{r,l}`` monomial basis."""
        if not self.fits(r):
            raise ValueError(f"polynomial does not fit Poly_{{{r},{self.nvars}}}")
        return [self.coeffs.get(m, Fraction(0)) for m in monomials(r, self.nvars)]

    # -- predicates ---------------------------------------------------------
    def fits(self, r: int) -> bool:
        """True when every variable's power is below ``r`` (``Poly_{r,l}``)."""
        return all(max(e) < r for e in self.coeffs) if self.coeffs else True

    def is_zero(self) -> bool:
        return not self.coeffs

    # -- algebra -------------------------------------------------------------
    def __add__(self, other: "MultiPoly") -> "MultiPoly":
        self._check(other)
        out = dict(self.coeffs)
        for e, c in other.coeffs.items():
            out[e] = out.get(e, Fraction(0)) + c
        return MultiPoly(out, self.nvars)

    def __sub__(self, other: "MultiPoly") -> "MultiPoly":
        self._check(other)
        out = dict(self.coeffs)
        for e, c in other.coeffs.items():
            out[e] = out.get(e, Fraction(0)) - c
        return MultiPoly(out, self.nvars)

    def __mul__(self, other: "MultiPoly") -> "MultiPoly":
        self._check(other)
        out: dict[Exponent, Fraction] = {}
        for ea, ca in self.coeffs.items():
            for eb, cb in other.coeffs.items():
                e = tuple(x + y for x, y in zip(ea, eb))
                out[e] = out.get(e, Fraction(0)) + ca * cb
        return MultiPoly(out, self.nvars)

    def _check(self, other: "MultiPoly") -> None:
        if not isinstance(other, MultiPoly) or other.nvars != self.nvars:
            raise ValueError("operands must share the variable count")

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, point: Sequence[EvalPoint], degree_bound: int) -> Fraction:
        """Homogeneous evaluation at ``point`` ∈ ``(F^2)^l``.

        Variable ``i`` with exponent ``e`` contributes
        ``x_i**e * h_i**(degree_bound-1-e)`` — each variable is homogenized
        to total degree ``degree_bound - 1``, matching the evaluation
        matrices of the univariate algorithm applied level by level.
        """
        if len(point) != self.nvars:
            raise ValueError("point arity mismatch")
        acc = Fraction(0)
        for exp, c in self.coeffs.items():
            term = c
            for (x, h), e in zip(point, exp):
                term *= Fraction(x) ** e * Fraction(h) ** (degree_bound - 1 - e)
            acc += term
        return acc

    def __eq__(self, other) -> bool:
        if isinstance(other, MultiPoly):
            return self.nvars == other.nvars and self.coeffs == other.coeffs
        return NotImplemented

    def __hash__(self):
        return hash((self.nvars, frozenset(self.coeffs.items())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiPoly({dict(self.coeffs)!r}, nvars={self.nvars})"


def evaluation_matrix_multivariate(
    points: Sequence[tuple[EvalPoint, ...]], r: int, l: int
) -> FractionMatrix:
    """Evaluation matrix of multivariate points for ``Poly_{r,l}``.

    Row ``i`` evaluates each monomial of :func:`monomials` at
    ``points[i]`` (homogenized per variable to degree ``r-1``).  Claim 6.1:
    the point set is in ``(r,l)``-general position iff every ``r**l``-row
    square submatrix of this matrix is invertible.
    """
    mons = monomials(r, l)
    rows = []
    for pt in points:
        if len(pt) != l:
            raise ValueError(f"point {pt} has wrong arity (l={l})")
        row = []
        for exp in mons:
            term = Fraction(1)
            for (x, h), e in zip(pt, exp):
                term *= Fraction(x) ** e * Fraction(h) ** (r - 1 - e)
            row.append(term)
        rows.append(row)
    return FractionMatrix(rows)
