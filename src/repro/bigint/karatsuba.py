"""Explicit Karatsuba multiplication (Toom-Cook-2).

De Stefani's parallel algorithm — which Section 3 generalizes — is for
Karatsuba, so a standalone, readable Karatsuba serves both as a reference
implementation and as a cross-check for ``ToomCook(k=2)`` (which computes
the same products through the generic bilinear-form machinery).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.kernels import KernelCounters

__all__ = ["karatsuba_multiply"]


def karatsuba_multiply(
    a: int,
    b: int,
    threshold_bits: int = 64,
    counters: "KernelCounters | None" = None,
) -> tuple[int, int]:
    """Multiply ``a * b`` by recursive Karatsuba.

    Recursion bottoms out when either operand fits ``threshold_bits`` (the
    hardware's max single-operation size ``s`` of Algorithm 1).  Returns
    ``(product, flops)`` counting one flop per leaf word-multiply and per
    word-wide addition/subtraction.  ``counters`` (optional) accumulates
    leaf limb-multiplications and the maximum recursion depth.
    """
    check_positive("threshold_bits", threshold_bits)
    sign = -1 if (a < 0) != (b < 0) else 1
    product, flops = _karatsuba(abs(a), abs(b), threshold_bits, counters, 0)
    return sign * product, flops


def _karatsuba(
    a: int,
    b: int,
    threshold: int,
    counters: "KernelCounters | None",
    depth: int,
) -> tuple[int, int]:
    if a == 0 or b == 0:
        return 0, 0
    if counters is not None:
        counters.note_depth(depth)
    if a.bit_length() <= threshold and b.bit_length() <= threshold:
        if counters is not None:
            counters.add_limb_mults(1)
        return a * b, 1
    # Shared split base: both halves get ceil(bits/2) bits.
    bits = max(a.bit_length(), b.bit_length())
    half = -(-bits // 2)
    mask = (1 << half) - 1
    a0, a1 = a & mask, a >> half
    b0, b1 = b & mask, b >> half
    words = -(-half // threshold)  # addition width in machine words

    low, f_low = _karatsuba(a0, b0, threshold, counters, depth + 1)
    high, f_high = _karatsuba(a1, b1, threshold, counters, depth + 1)
    mid_ab, f_mid = _karatsuba(a0 + a1, b0 + b1, threshold, counters, depth + 1)
    mid = mid_ab - low - high

    flops = f_low + f_high + f_mid
    flops += 2 * words  # the two evaluation additions (a0+a1, b0+b1)
    flops += 4 * words  # interpolation subtractions over double-width limbs
    flops += 3 * words  # final shifted accumulation
    return low + (mid << half) + (high << (2 * half)), flops
