"""Evaluation-stage reuse (paper Section 1.1; Zanoni 2009).

Evaluating the digit polynomial at the standard symmetric point set
repeats work: for a ``±x`` pair,

    ``p(x)  = E(x) + O(x)``  and  ``p(-x) = E(x) - O(x)``

where ``E``/``O`` are the even/odd-degree partial sums — so the two rows
of the evaluation matrix share all their multiplications.  An
:class:`EvalPlan` compiles a point set into a short sequence of linear
ops over a register file with this sharing made explicit; applying it
computes exactly ``U @ digits`` with fewer word operations than the dense
matrix-vector product.

Plans work on any register values supporting ``+`` and integer scalar
``*`` (machine-word digits or distributed limb blocks alike).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bigint.evalpoints import EvalPoint

__all__ = ["EvalPlan", "LinOp", "reuse_evaluation_plan"]


@dataclass(frozen=True)
class LinOp:
    """``registers[dest] = sum(coef * registers[src] for coef, src)``."""

    dest: int
    terms: tuple[tuple[int, int], ...]  # (coefficient, source register)

    def word_ops(self) -> int:
        """Cost in word operations per digit word: one multiply per
        non-unit coefficient plus the accumulating additions."""
        muls = sum(1 for c, _ in self.terms if abs(c) != 1)
        adds = max(0, len(self.terms) - 1)
        return muls + adds


@dataclass(frozen=True)
class EvalPlan:
    """A compiled evaluation: ``k`` input registers, then ``ops`` in order;
    ``outputs[i]`` is the register holding point ``i``'s evaluation."""

    k: int
    ops: tuple[LinOp, ...]
    outputs: tuple[int, ...]

    def word_ops(self) -> int:
        return sum(op.word_ops() for op in self.ops)

    def apply(self, digits) -> list:
        """Evaluate: ``digits`` is the length-``k`` coefficient list."""
        if len(digits) != self.k:
            raise ValueError(f"expected {self.k} digits, got {len(digits)}")
        regs: list = list(digits)
        for op in self.ops:
            acc = None
            for coef, src in op.terms:
                term = regs[src] if coef == 1 else regs[src] * coef
                acc = term if acc is None else acc + term
            if acc is None:
                raise ValueError("empty linear op")
            if op.dest == len(regs):
                regs.append(acc)
            elif op.dest < len(regs):
                regs[op.dest] = acc
            else:
                raise ValueError("non-contiguous register allocation")
        return [regs[r] for r in self.outputs]


def reuse_evaluation_plan(points: list[EvalPoint], k: int) -> EvalPlan:
    """Compile ``points`` into a reuse-aware evaluation plan.

    Finite ``±x`` pairs share their even/odd partial sums; ``x = 0`` and
    the point at infinity are free register reads; remaining points get a
    direct row.  The result computes exactly the homogeneous evaluation
    ``[h^(k-1-j) x^j] @ digits`` (all standard sets use ``h = 1`` for
    finite points, which this compiler requires).
    """
    if k < 1:
        raise ValueError("k must be positive")
    ops: list[LinOp] = []
    outputs: list[int] = [-1] * len(points)
    next_reg = k

    def emit(terms: list[tuple[int, int]]) -> int:
        nonlocal next_reg
        ops.append(LinOp(dest=next_reg, terms=tuple(terms)))
        next_reg += 1
        return next_reg - 1

    by_value: dict[int, int] = {}
    for i, (x, h) in enumerate(points):
        if h == 0:
            outputs[i] = k - 1  # leading digit
        elif h != 1:
            raise ValueError(
                f"reuse plan requires h in {{0, 1}}, got point {(x, h)}"
            )
        elif x == 0:
            outputs[i] = 0
        else:
            by_value[x] = i

    done: set[int] = set()
    for x, i in sorted(by_value.items(), key=lambda kv: abs(kv[0])):
        if x in done:
            continue
        partner = by_value.get(-x)
        if partner is not None and -x not in done:
            ax = abs(x)  # E/O built from the positive representative
            even_terms = [(ax**j, j) for j in range(0, k, 2)]
            odd_terms = [(ax**j, j) for j in range(1, k, 2)]
            even = emit(even_terms)
            if odd_terms:
                odd = emit(odd_terms)
                plus = emit([(1, even), (1, odd)])
                minus = emit([(1, even), (-1, odd)])
            else:  # k == 1: p is constant
                plus = minus = even
            # E/O are built from |x|: +|x| gets E+O, -|x| gets E-O.
            outputs[by_value[abs(x)]] = plus
            outputs[by_value[-abs(x)]] = minus
            done.add(x)
            done.add(-x)
        else:
            outputs[i] = emit([(x**j, j) for j in range(k)])
            done.add(x)

    if any(o < 0 for o in outputs):
        raise AssertionError("some point was not compiled")
    return EvalPlan(k=k, ops=tuple(ops), outputs=tuple(outputs))
