"""Long-integer arithmetic: the sequential substrate of the paper.

Implements everything Section 2.2–2.3 relies on:

- :mod:`repro.bigint.limbs` — signed digit ("limb") vectors with lazy
  carries; the data that flows through evaluation/interpolation matrices
  and across the simulated network.
- :mod:`repro.bigint.split` — the shared-base input splitting of
  Algorithms 1 and 2.
- :mod:`repro.bigint.schoolbook` — the Θ(n²) baseline.
- :mod:`repro.bigint.karatsuba` — explicit Toom-Cook-2 for reference.
- :mod:`repro.bigint.evalpoints` — homogeneous evaluation points (Zanoni
  notation; Remark 2.2) including the redundant points of Section 4.2.
- :mod:`repro.bigint.matrices` — the bilinear form ⟨U, V, W⟩ of
  Toom-Cook-k.
- :mod:`repro.bigint.toomcook` — sequential recursive Toom-Cook-k
  (Algorithm 1).
- :mod:`repro.bigint.unbalanced` — unbalanced Toom-Cook-(k1, k2)
  ("Toom-2.5" and friends; Section 1.1).
- :mod:`repro.bigint.lazy` — Toom-Cook with lazy interpolation
  (Algorithm 2; Bermudo Mera et al. 2020).
- :mod:`repro.bigint.toomgraph` — interpolation as a minimal-cost
  inversion sequence (Definition 2.3; Bodrato & Zanoni 2006).
- :mod:`repro.bigint.multivariate` — the multivariate-polynomial view of
  multi-step Toom-Cook (Claims 2.1–2.3).
"""

from repro.bigint.limbs import LimbVector
from repro.bigint.split import split_shared_base, split_lazy, recombine
from repro.bigint.schoolbook import schoolbook_multiply, schoolbook_cost
from repro.bigint.karatsuba import karatsuba_multiply
from repro.bigint.evalpoints import (
    EvalPoint,
    toom_points,
    extended_toom_points,
    points_pairwise_distinct,
)
from repro.bigint.matrices import (
    evaluation_matrix,
    full_evaluation_matrix,
    interpolation_matrix,
    interpolation_matrix_for_points,
    toom_operators,
)
from repro.bigint.toomcook import ToomCook, toom_cost
from repro.bigint.unbalanced import UnbalancedToomCook, unbalanced_points
from repro.bigint.lazy import LazyToomCook
from repro.bigint.toomgraph import (
    RowOp,
    AddMul,
    Scale,
    Swap,
    inversion_sequence,
    apply_inversion_sequence,
    sequence_cost,
    toom_graph_search,
)
from repro.bigint.multivariate import MultiPoly, evaluation_matrix_multivariate
from repro.bigint.evalplan import EvalPlan, LinOp, reuse_evaluation_plan
from repro.bigint.ntt import NttMultiplier, ntt, intt

__all__ = [
    "LimbVector",
    "split_shared_base",
    "split_lazy",
    "recombine",
    "schoolbook_multiply",
    "schoolbook_cost",
    "karatsuba_multiply",
    "EvalPoint",
    "toom_points",
    "extended_toom_points",
    "points_pairwise_distinct",
    "evaluation_matrix",
    "full_evaluation_matrix",
    "interpolation_matrix",
    "interpolation_matrix_for_points",
    "toom_operators",
    "ToomCook",
    "toom_cost",
    "UnbalancedToomCook",
    "unbalanced_points",
    "LazyToomCook",
    "RowOp",
    "AddMul",
    "Scale",
    "Swap",
    "inversion_sequence",
    "apply_inversion_sequence",
    "sequence_cost",
    "toom_graph_search",
    "MultiPoly",
    "evaluation_matrix_multivariate",
    "EvalPlan",
    "LinOp",
    "reuse_evaluation_plan",
    "NttMultiplier",
    "ntt",
    "intt",
]
