"""Applying exact rational matrices to vectors of limb blocks.

Evaluation matrices are integral, but interpolation matrices ``W^T`` have
rational entries whose *row combinations* are guaranteed integral on valid
inputs even though individual terms are not (e.g. a ``1/2`` entry hitting
an odd block).  :func:`apply_matrix_to_blocks` therefore clears each row's
denominators first — integer combination, then one exact division by the
row's LCM — keeping every intermediate an integer :class:`LimbVector`.

These helpers are shared by the sequential lazy algorithm
(:mod:`repro.bigint.lazy`) and the parallel algorithms in
:mod:`repro.core`, which apply the same matrices to *distributed* block
slices.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm

from repro.bigint.limbs import LimbVector

__all__ = ["apply_matrix_to_blocks", "matrix_apply_flops", "row_lcm"]


def row_lcm(row) -> int:
    """LCM of the denominators of one matrix row."""
    d = 1
    for v in row:
        d = lcm(d, Fraction(v).denominator)
    return d


def apply_matrix_to_blocks(rows, blocks: list[LimbVector]) -> list[LimbVector]:
    """Compute ``rows @ blocks`` where entries of ``blocks`` are
    :class:`LimbVector` and ``rows`` is a rational matrix.

    Each output row is computed as an *integer* linear combination scaled
    by the row's denominator LCM, followed by one exact division — raising
    ``ValueError`` if the result is not integral (which on valid Toom-Cook
    data never happens and otherwise indicates corruption, e.g. an
    undetected soft fault).
    """
    if not blocks:
        raise ValueError("blocks must be non-empty")
    width = len(blocks[0])
    base_bits = blocks[0].base_bits
    out: list[LimbVector] = []
    for row in rows:
        if len(row) != len(blocks):
            raise ValueError(
                f"row width {len(row)} does not match {len(blocks)} blocks"
            )
        d = row_lcm(row)
        acc: LimbVector | None = None
        for coef, block in zip(row, blocks):
            c = Fraction(coef) * d
            if c == 0:
                continue
            term = block * int(c)
            acc = term if acc is None else acc + term
        if acc is None:
            acc = LimbVector.zeros(width, base_bits)
        out.append(acc.exact_div(d) if d != 1 else acc)
    return out


def matrix_apply_flops(rows, block_len: int) -> int:
    """Word-operation cost model for :func:`apply_matrix_to_blocks`:
    two ops (multiply + accumulate) per nonzero coefficient per limb,
    plus one per limb for each row needing a final exact division."""
    flops = 0
    for row in rows:
        nnz = sum(1 for v in row if v)
        flops += 2 * nnz * block_len
        if row_lcm(row) != 1:
            flops += block_len
    return flops
