"""Toom-Graph inversion sequences (Definition 2.3; Bodrato & Zanoni 2006).

Multiplying by ``W^T`` can be done as a dense matrix-vector product, but
practical Toom implementations instead run an *inversion sequence*: a short
list of elementary row operations that maps the pointwise products to the
product coefficients.  The Toom-Graph is the weighted graph whose vertices
are matrices and whose edges are single row operations; an optimal
inversion sequence is a cheapest path from ``(W^T)^{-1}`` to the identity.

We provide:

- the row-operation vocabulary (:class:`AddMul`, :class:`Scale`,
  :class:`Swap`) with a per-operation cost model,
- :func:`inversion_sequence` — a correct sequence extracted from
  Gauss-Jordan elimination (always available, any ``k``),
- :func:`toom_graph_search` — a bounded Dijkstra over the Toom-Graph with
  a small coefficient vocabulary, which recovers cheaper sequences for
  small ``k`` (the paper applies this optimization in Remark 4.1),
- :func:`apply_inversion_sequence` — runs a sequence against a vector of
  numbers or limb blocks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Union

from repro.util.rational import FractionMatrix, mat_identity

__all__ = [
    "RowOp",
    "AddMul",
    "Scale",
    "Swap",
    "OpCosts",
    "inversion_sequence",
    "apply_inversion_sequence",
    "sequence_cost",
    "toom_graph_search",
]


@dataclass(frozen=True)
class AddMul:
    """``row[target] += coef * row[source]``."""

    target: int
    source: int
    coef: Fraction

    def __post_init__(self):
        if self.target == self.source:
            raise ValueError("AddMul target and source must differ")
        if self.coef == 0:
            raise ValueError("AddMul with zero coefficient is a no-op")


@dataclass(frozen=True)
class Scale:
    """``row[target] *= coef`` (``coef = 1/d`` is an exact division)."""

    target: int
    coef: Fraction

    def __post_init__(self):
        if self.coef == 0:
            raise ValueError("Scale by zero is not invertible")


@dataclass(frozen=True)
class Swap:
    """``row[i] <-> row[j]``."""

    i: int
    j: int

    def __post_init__(self):
        if self.i == self.j:
            raise ValueError("Swap of a row with itself is a no-op")


RowOp = Union[AddMul, Scale, Swap]


@dataclass(frozen=True)
class OpCosts:
    """Per-operation weights (Bodrato & Zanoni weigh shifts/adds cheaper
    than general multiplications and exact divisions)."""

    add_sub: float = 1.0  # AddMul with coefficient +-1
    add_mul: float = 2.0  # AddMul with a general coefficient
    scale: float = 2.0
    swap: float = 0.0

    def of(self, op: RowOp) -> float:
        if isinstance(op, AddMul):
            return self.add_sub if abs(op.coef) == 1 else self.add_mul
        if isinstance(op, Scale):
            return self.scale
        return self.swap


def sequence_cost(ops: Sequence[RowOp], costs: OpCosts | None = None) -> float:
    """Aggregate weight of a sequence."""
    costs = costs or OpCosts()
    return sum(costs.of(op) for op in ops)


def _apply_to_matrix(op: RowOp, rows: list[list[Fraction]]) -> None:
    if isinstance(op, AddMul):
        src = rows[op.source]
        rows[op.target] = [a + op.coef * b for a, b in zip(rows[op.target], src)]
    elif isinstance(op, Scale):
        rows[op.target] = [op.coef * a for a in rows[op.target]]
    else:
        rows[op.i], rows[op.j] = rows[op.j], rows[op.i]


def apply_inversion_sequence(ops: Sequence[RowOp], vector: list) -> list:
    """Apply a sequence to a vector of entries (numbers or limb blocks).

    Entries must support ``+`` and scalar multiplication; ``Scale`` by a
    non-integer uses ``exact_div`` when available (limb blocks) and exact
    ``Fraction`` arithmetic otherwise.
    """
    out = list(vector)
    for op in ops:
        if isinstance(op, AddMul):
            out[op.target] = out[op.target] + _scalar_mul(out[op.source], op.coef)
        elif isinstance(op, Scale):
            out[op.target] = _scalar_mul(out[op.target], op.coef)
        else:
            out[op.i], out[op.j] = out[op.j], out[op.i]
    return out


def _scalar_mul(value, coef: Fraction):
    coef = Fraction(coef)
    if hasattr(value, "exact_div"):
        scaled = value * coef.numerator
        return scaled.exact_div(coef.denominator) if coef.denominator != 1 else scaled
    result = coef * value
    if isinstance(value, int) and isinstance(result, Fraction) and result.denominator == 1:
        return int(result)
    return result


def inversion_sequence(w_t: FractionMatrix) -> list[RowOp]:
    """A correct (not necessarily optimal) inversion sequence for ``W^T``.

    Gauss-Jordan-eliminates ``(W^T)^{-1}`` to the identity, recording the
    row operations; by Definition 2.3 the recorded sequence applied to the
    evaluation vector computes ``W^T @ v``.
    """
    target = w_t.inv()
    rows = [list(r) for r in target.rows]
    n = len(rows)
    ops: list[RowOp] = []
    for col in range(n):
        pivot = next((r for r in range(col, n) if rows[r][col] != 0), None)
        if pivot is None:
            raise ValueError("matrix is singular")
        if pivot != col:
            op: RowOp = Swap(col, pivot)
            _apply_to_matrix(op, rows)
            ops.append(op)
        pv = rows[col][col]
        if pv != 1:
            op = Scale(col, Fraction(1, 1) / pv)
            _apply_to_matrix(op, rows)
            ops.append(op)
        for r in range(n):
            if r != col and rows[r][col] != 0:
                op = AddMul(r, col, -rows[r][col])
                _apply_to_matrix(op, rows)
                ops.append(op)
    return ops


def _freeze(rows: list[list[Fraction]]) -> tuple:
    return tuple(tuple(r) for r in rows)


def toom_graph_search(
    w_t: FractionMatrix,
    costs: OpCosts | None = None,
    coefficients: Sequence[Fraction] | None = None,
    max_nodes: int = 20000,
) -> list[RowOp]:
    """Bounded Dijkstra over the Toom-Graph from ``(W^T)^{-1}`` to ``I``.

    ``coefficients`` is the AddMul/Scale vocabulary (default: small values
    ``+-1, +-2, +-1/2, +-1/3, 1/6, ...`` that cover the classic Toom-3
    sequences).  Falls back to :func:`inversion_sequence` when the search
    frontier exhausts ``max_nodes`` without reaching the identity.
    """
    costs = costs or OpCosts()
    if coefficients is None:
        coefficients = [
            Fraction(1),
            Fraction(-1),
            Fraction(2),
            Fraction(-2),
            Fraction(1, 2),
            Fraction(-1, 2),
            Fraction(1, 3),
            Fraction(-1, 3),
            Fraction(3),
            Fraction(-3),
            Fraction(1, 6),
        ]
    start_rows = [list(r) for r in w_t.inv().rows]
    n = len(start_rows)
    ident = _freeze(mat_identity(n))
    start = _freeze(start_rows)

    best: dict[tuple, float] = {start: 0.0}
    heap: list[tuple[float, int, tuple, list[RowOp]]] = [(0.0, 0, start, [])]
    counter = 1
    explored = 0
    while heap and explored < max_nodes:
        cost, _, state, path = heapq.heappop(heap)
        if state == ident:
            return path
        if cost > best.get(state, float("inf")):
            continue
        explored += 1
        candidates: list[RowOp] = []
        for t in range(n):
            for s in range(n):
                if s != t:
                    candidates.extend(AddMul(t, s, c) for c in coefficients)
            candidates.extend(
                Scale(t, c) for c in coefficients if abs(c) != 1 or c == -1
            )
        for i in range(n):
            for j in range(i + 1, n):
                candidates.append(Swap(i, j))
        for op in candidates:
            rows = [list(r) for r in state]
            _apply_to_matrix(op, rows)
            nxt = _freeze(rows)
            ncost = cost + costs.of(op)
            if ncost < best.get(nxt, float("inf")):
                best[nxt] = ncost
                heapq.heappush(heap, (ncost, counter, nxt, path + [op]))
                counter += 1
    return inversion_sequence(w_t)
