"""Schoolbook (naive) long multiplication — the Θ(n²) baseline.

The paper's introduction contrasts Toom-Cook against the schoolbook
algorithm; the sequential-crossover benchmark regenerates that comparison.
The implementation works limb-by-limb so its arithmetic-operation count is
the honest ``Θ(n²)`` (Python's builtin ``*`` is only used on single limbs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bigint.limbs import LimbVector
from repro.util.validation import check_positive
from repro.util.words import int_to_digits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.kernels import KernelCounters

__all__ = ["schoolbook_multiply", "schoolbook_cost"]


def schoolbook_multiply(
    a: int,
    b: int,
    word_bits: int = 64,
    counters: "KernelCounters | None" = None,
) -> tuple[int, int]:
    """Multiply ``a * b`` with limb-wise schoolbook convolution.

    Returns ``(product, flops)`` where ``flops`` counts single-word
    multiply-accumulate operations.  ``counters`` (optional) records the
    exact limb-multiplication count; schoolbook never recurses, so its
    depth contribution is 0.
    """
    check_positive("word_bits", word_bits)
    sign = -1 if (a < 0) != (b < 0) else 1
    a, b = abs(a), abs(b)
    if a == 0 or b == 0:
        return 0, 0
    da = int_to_digits(a, word_bits)
    db = int_to_digits(b, word_bits)
    va = LimbVector(da, word_bits)
    vb = LimbVector(db, word_bits)
    product = va.convolve(vb)
    flops = 2 * len(da) * len(db)  # one mul + one add per limb pair
    if counters is not None:
        counters.add_limb_mults(len(da) * len(db))
        counters.note_depth(0)
    return sign * product.to_int(), flops


def schoolbook_cost(n_words: int) -> int:
    """Predicted arithmetic cost of schoolbook on ``n_words``-word inputs."""
    check_positive("n_words", n_words)
    return 2 * n_words * n_words
