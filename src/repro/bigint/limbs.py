"""Signed limb vectors with lazy carries.

A :class:`LimbVector` is a little-endian vector of integer "limbs" with an
implicit radix ``2**base_bits`` fixed at creation.  Entries may be negative
or exceed the radix — carries are *lazy*, resolved only by :meth:`to_int`.
This is exactly what the lazy-interpolation Toom-Cook of Algorithm 2 (and
its parallel version) needs: evaluation applies small signed linear
combinations to digit blocks, interpolation applies rational ones, and the
single carry-resolution pass happens at the very end (line 16).

LimbVectors support the vector-space operations the evaluation and
interpolation matrices require (``+``, ``-``, scalar ``*`` by ``int`` or
``Fraction``), convolution (polynomial product), block splitting/joining
for the recursive algorithms, and ``words()`` so the simulated network can
charge their true bandwidth.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.util.words import bits_to_words, digits_to_int, int_to_digits

__all__ = ["LimbVector"]


class LimbVector:
    """An immutable signed limb vector over radix ``2**base_bits``."""

    __slots__ = ("limbs", "base_bits")

    def __init__(self, limbs: Iterable[int | Fraction], base_bits: int):
        if base_bits <= 0:
            raise ValueError("base_bits must be positive")
        entries = tuple(limbs)
        for v in entries:
            if isinstance(v, Fraction):
                if v.denominator != 1:
                    raise ValueError(f"non-integral limb {v}")
            elif not isinstance(v, int) or isinstance(v, bool):
                raise TypeError(f"limb must be an integer, got {type(v).__name__}")
        object.__setattr__(
            self, "limbs", tuple(int(v) for v in entries)
        )
        object.__setattr__(self, "base_bits", base_bits)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("LimbVector is immutable")

    def __reduce__(self) -> tuple:
        # The immutability guard defeats pickle's default slot
        # restoration (it re-enters __setattr__); rebuild through
        # __init__ instead — the process backend ships limb vectors in
        # rank-program arguments and messages.
        return (LimbVector, (self.limbs, self.base_bits))

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_int(cls, value: int, base_bits: int, count: int | None = None) -> "LimbVector":
        """Split a non-negative integer into limbs (zero-padded to ``count``)."""
        return cls(int_to_digits(value, base_bits, count=count), base_bits)

    @classmethod
    def zeros(cls, count: int, base_bits: int) -> "LimbVector":
        return cls([0] * count, base_bits)

    # -- conversions -------------------------------------------------------
    def to_int(self) -> int:
        """Resolve carries: ``sum(limb_i * radix**i)`` (Algorithm 1 line 16)."""
        return digits_to_int(list(self.limbs), self.base_bits)

    def words(self, word_bits: int) -> int:
        """Size in machine words (for bandwidth accounting)."""
        return sum(
            bits_to_words(abs(v).bit_length(), word_bits) for v in self.limbs
        ) or 1

    # -- vector space -------------------------------------------------------
    def _check_compatible(self, other: "LimbVector") -> None:
        if self.base_bits != other.base_bits:
            raise ValueError("mismatched limb radices")
        if len(self.limbs) != len(other.limbs):
            raise ValueError(
                f"mismatched lengths {len(self.limbs)} vs {len(other.limbs)}"
            )

    def __add__(self, other: "LimbVector") -> "LimbVector":
        if not isinstance(other, LimbVector):
            return NotImplemented
        self._check_compatible(other)
        return LimbVector(
            [a + b for a, b in zip(self.limbs, other.limbs)], self.base_bits
        )

    def __sub__(self, other: "LimbVector") -> "LimbVector":
        if not isinstance(other, LimbVector):
            return NotImplemented
        self._check_compatible(other)
        return LimbVector(
            [a - b for a, b in zip(self.limbs, other.limbs)], self.base_bits
        )

    def __neg__(self) -> "LimbVector":
        return LimbVector([-a for a in self.limbs], self.base_bits)

    def __mul__(self, scalar) -> "LimbVector":
        if isinstance(scalar, Fraction):
            scaled = []
            for a in self.limbs:
                v = a * scalar
                if v.denominator != 1:
                    raise ValueError(
                        f"scalar {scalar} does not divide limb {a} exactly"
                    )
                scaled.append(int(v))
            return LimbVector(scaled, self.base_bits)
        if isinstance(scalar, int) and not isinstance(scalar, bool):
            return LimbVector([a * scalar for a in self.limbs], self.base_bits)
        return NotImplemented

    __rmul__ = __mul__

    def exact_div(self, divisor: int) -> "LimbVector":
        """Divide every limb by ``divisor``, requiring exactness (the
        exact divisions of Toom interpolation sequences)."""
        if divisor == 0:
            raise ZeroDivisionError("exact_div by zero")
        out = []
        for a in self.limbs:
            q, r = divmod(a, divisor)
            if r:
                raise ValueError(f"{a} is not divisible by {divisor}")
            out.append(q)
        return LimbVector(out, self.base_bits)

    # -- polynomial ---------------------------------------------------------
    def convolve(self, other: "LimbVector") -> "LimbVector":
        """Polynomial product of the two limb vectors (schoolbook
        convolution); the result has ``len(a)+len(b)-1`` limbs."""
        if self.base_bits != other.base_bits:
            raise ValueError("mismatched limb radices")
        a, b = self.limbs, other.limbs
        out = [0] * (len(a) + len(b) - 1)
        for i, ai in enumerate(a):
            if ai:
                for j, bj in enumerate(b):
                    out[i + j] += ai * bj
        return LimbVector(out, self.base_bits)

    # -- blocks ------------------------------------------------------------
    def split_blocks(self, nblocks: int) -> list["LimbVector"]:
        """Split into ``nblocks`` equal contiguous blocks (little-endian:
        block ``j`` holds limbs ``j*m .. (j+1)*m-1``)."""
        n = len(self.limbs)
        if nblocks <= 0 or n % nblocks:
            raise ValueError(f"cannot split {n} limbs into {nblocks} blocks")
        m = n // nblocks
        return [
            LimbVector(self.limbs[j * m : (j + 1) * m], self.base_bits)
            for j in range(nblocks)
        ]

    @staticmethod
    def concat(blocks: Sequence["LimbVector"]) -> "LimbVector":
        if not blocks:
            raise ValueError("concat of no blocks")
        base_bits = blocks[0].base_bits
        limbs: list[int] = []
        for b in blocks:
            if b.base_bits != base_bits:
                raise ValueError("mismatched limb radices")
            limbs.extend(b.limbs)
        return LimbVector(limbs, base_bits)

    def take(self, start: int, count: int) -> "LimbVector":
        """Contiguous sub-vector ``[start, start+count)``."""
        if start < 0 or count < 0 or start + count > len(self.limbs):
            raise ValueError("take out of range")
        return LimbVector(self.limbs[start : start + count], self.base_bits)

    def pad_to(self, count: int) -> "LimbVector":
        """Zero-extend to ``count`` limbs."""
        if count < len(self.limbs):
            raise ValueError("pad_to cannot shrink")
        return LimbVector(
            self.limbs + (0,) * (count - len(self.limbs)), self.base_bits
        )

    # -- cost helpers -------------------------------------------------------
    def flops_linear(self) -> int:
        """Cost charged for one scalar-multiply-accumulate over this vector."""
        return 2 * len(self.limbs)

    # -- container ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.limbs)

    def __getitem__(self, idx: int) -> int:
        return self.limbs[idx]

    def __iter__(self):
        return iter(self.limbs)

    def __eq__(self, other) -> bool:
        if isinstance(other, LimbVector):
            return self.limbs == other.limbs and self.base_bits == other.base_bits
        return NotImplemented

    def __hash__(self):
        return hash((self.limbs, self.base_bits))

    def is_zero(self) -> bool:
        return all(v == 0 for v in self.limbs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shown = list(self.limbs[:6])
        suffix = "..." if len(self.limbs) > 6 else ""
        return f"LimbVector({shown}{suffix}, base_bits={self.base_bits})"
