"""Sequential recursive Toom-Cook-k (Algorithm 1).

The generic algorithm for any ``k >= 2``: split with a shared base,
evaluate through ``U``, recurse on the ``2k-1`` pointwise products,
interpolate through ``W^T``, resolve carries.  Arithmetic is counted in
single-word operations so the measured cost can be compared against the
``Θ(n^(log_k(2k-1)))`` model (:func:`toom_cost`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING

from repro.bigint.evalpoints import EvalPoint, toom_points
from repro.bigint.matrices import toom_operators
from repro.bigint.split import split_shared_base
from repro.util.rational import mat_vec
from repro.util.validation import check_positive
from repro.util.words import bits_to_words

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.kernels import KernelCounters

__all__ = ["ToomCook", "toom_cost", "cached_toom_operators", "clear_operator_cache"]

#: Evaluation/interpolation operator triples (U, V, W^T) keyed by
#: ``(k, points)``.  Building them means assembling and inverting a
#: (2k-1)x(2k-1) rational Vandermonde system, so instances sharing the
#: same geometry (every benchmark loop, every simulated rank) reuse one
#: triple.  Worst case under concurrent construction is a duplicate
#: compute of an immutable value — never a wrong one.
_OPERATOR_CACHE: dict[tuple, tuple] = {}


def cached_toom_operators(
    k: int,
    points: list[EvalPoint],
    counters: "KernelCounters | None" = None,
):
    """``toom_operators(k, points)`` through the process-wide cache,
    recording the hit/miss into ``counters`` when given."""
    key = (k, tuple(points))
    ops = _OPERATOR_CACHE.get(key)
    if counters is not None:
        counters.note_eval_cache(hit=ops is not None)
    if ops is None:
        ops = toom_operators(k, points)
        _OPERATOR_CACHE[key] = ops
    return ops


def clear_operator_cache() -> None:
    """Drop every cached operator triple (test isolation hook)."""
    _OPERATOR_CACHE.clear()


class ToomCook:
    """Sequential Toom-Cook-k multiplier.

    Parameters
    ----------
    k:
        Split factor (``k = 2`` is Karatsuba).
    threshold_bits:
        The hardware's maximum single-operation size ``s = 2**threshold_bits``
        (Algorithm 1's parameter): operands at most this wide multiply in
        one flop.
    points:
        Optional custom evaluation points (``>= 2k-1``, pairwise distinct).
    counters:
        Optional :class:`~repro.obs.kernels.KernelCounters` accumulating
        leaf limb-multiplications, maximum recursion depth and
        evaluation-operator cache hits across this instance's calls.
    """

    def __init__(
        self,
        k: int,
        threshold_bits: int = 64,
        points: list[EvalPoint] | None = None,
        interpolation: str = "matrix",
        evaluation: str = "matrix",
        counters: "KernelCounters | None" = None,
    ):
        if k < 2:
            raise ValueError("Toom-Cook requires k >= 2")
        check_positive("threshold_bits", threshold_bits)
        if interpolation not in ("matrix", "sequence"):
            raise ValueError("interpolation must be 'matrix' or 'sequence'")
        if evaluation not in ("matrix", "reuse"):
            raise ValueError("evaluation must be 'matrix' or 'reuse'")
        self.k = k
        self.threshold_bits = threshold_bits
        self.points = list(points) if points is not None else toom_points(k)
        self.counters = counters
        self.U, self.V, self.W_T = cached_toom_operators(k, self.points, counters)
        self.interpolation = interpolation
        if interpolation == "sequence":
            # Remark 4.1: interpolate by an inversion sequence of
            # elementary row operations (Toom-Graph, Definition 2.3)
            # instead of a dense matrix product.
            from repro.bigint.toomgraph import (
                inversion_sequence,
                toom_graph_search,
            )

            if k == 2:
                self._inv_seq = toom_graph_search(self.W_T, max_nodes=4000)
            else:
                self._inv_seq = inversion_sequence(self.W_T)
        else:
            self._inv_seq = None
        self.evaluation = evaluation
        if evaluation == "reuse":
            # Section 1.1 (Zanoni): share the even/odd partial sums of
            # symmetric point pairs across evaluation rows.
            from repro.bigint.evalplan import reuse_evaluation_plan

            self._eval_plan = reuse_evaluation_plan(self.points, k)
        else:
            self._eval_plan = None
        # Direct multiplication is also forced when splitting stops
        # shrinking the problem (tiny inputs relative to k).
        self._direct_bits = max(threshold_bits, 8 * k)

    # -- public ------------------------------------------------------------
    def multiply(self, a: int, b: int) -> tuple[int, int]:
        """Return ``(a*b, flops)``."""
        sign = -1 if (a < 0) != (b < 0) else 1
        product, flops = self._mul(abs(a), abs(b))
        return sign * product, flops

    # -- recursion ---------------------------------------------------------
    def _mul(self, a: int, b: int, depth: int = 0) -> tuple[int, int]:
        if a == 0 or b == 0:
            return 0, 0
        if self.counters is not None:
            self.counters.note_depth(depth)
        bits = max(a.bit_length(), b.bit_length())
        if bits <= self.threshold_bits:
            if self.counters is not None:
                self.counters.add_limb_mults(1)
            return a * b, 1
        if bits <= self._direct_bits:
            # Too small to split profitably; schoolbook-equivalent cost.
            wa = bits_to_words(a.bit_length(), self.threshold_bits)
            wb = bits_to_words(b.bit_length(), self.threshold_bits)
            if self.counters is not None:
                self.counters.add_limb_mults(wa * wb)
            return a * b, 2 * wa * wb

        k = self.k
        va, vb, base_bits = split_shared_base(a, b, k)
        digit_words = bits_to_words(base_bits, self.threshold_bits)

        # Evaluation: a' = U a-digits, b' = V b-digits (lines 6-7),
        # either dense or through the shared-subexpression plan.
        if self._eval_plan is not None:
            a_evals = self._eval_plan.apply(list(va.limbs))
            b_evals = self._eval_plan.apply(list(vb.limbs))
            flops = 2 * self._eval_plan.word_ops() * digit_words
        else:
            a_evals = mat_vec(self.U.rows, list(va.limbs))
            b_evals = mat_vec(self.V.rows, list(vb.limbs))
            flops = 2 * self._nnz(self.U) * digit_words  # U and V cost the same
            flops += 2 * self._nnz(self.V) * digit_words

        # Pointwise products (lines 8-14), recursing when needed.
        m = 2 * k - 1
        c_evals = []
        for i in range(m):
            ai, bi = int(a_evals[i]), int(b_evals[i])
            sign = -1 if (ai < 0) != (bi < 0) else 1
            p, fl = self._mul(abs(ai), abs(bi), depth + 1)
            c_evals.append(sign * p)
            flops += fl

        # Interpolation: coefficients = W^T c' (line 15), either as a
        # dense matrix product or an inversion sequence (Remark 4.1).
        product_words = 2 * digit_words
        if self._inv_seq is not None:
            from repro.bigint.toomgraph import apply_inversion_sequence

            coeffs = apply_inversion_sequence(self._inv_seq, c_evals)
            flops += self._sequence_word_ops() * product_words
        else:
            coeffs = mat_vec(self.W_T.rows, c_evals)
            flops += 2 * self._nnz(self.W_T) * product_words

        # Carry resolution (line 16): accumulate coeff_i * B^i.
        acc = 0
        for i, c in enumerate(coeffs):
            c = Fraction(c)
            if c.denominator != 1:
                raise ArithmeticError(
                    "interpolation produced a non-integer coefficient: "
                    f"{c} (invalid evaluation points?)"
                )
            acc += int(c) << (i * base_bits)
        flops += m * product_words
        return acc, flops

    @staticmethod
    def _nnz(matrix) -> int:
        return sum(1 for row in matrix.rows for v in row if v)

    def _sequence_word_ops(self) -> int:
        """Word operations per limb for one inversion-sequence pass:
        AddMul costs an add plus (for non-unit coefficients) a multiply;
        Scale costs one multiply/exact-divide; Swap is free."""
        from repro.bigint.toomgraph import AddMul, Scale

        ops = 0
        for op in self._inv_seq:
            if isinstance(op, AddMul):
                ops += 1 if abs(op.coef) == 1 else 2
            elif isinstance(op, Scale):
                ops += 1
        return ops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ToomCook(k={self.k}, threshold_bits={self.threshold_bits})"


def toom_cost(n_words: int, k: int, linear_constant: int = 10) -> int:
    """Model cost of sequential Toom-Cook-k on ``n_words``-word operands.

    Solves the recurrence ``T(n) = (2k-1) T(n/k) + c*n``, ``T(1) = 1`` —
    the ``Θ(n^(log_k(2k-1)))`` of the paper's introduction.
    """
    check_positive("n_words", n_words)
    if k < 2:
        raise ValueError("k must be >= 2")
    if n_words == 1:
        return 1
    sub = toom_cost(-(-n_words // k), k, linear_constant)
    return (2 * k - 1) * sub + linear_constant * n_words
