"""Input splitting (Algorithm 1 line 4 and Algorithm 2 line 4).

Toom-Cook-k splits both operands into ``k`` digits with a *shared* base
``B`` (Section 2.2).  The lazy-interpolation variant splits the whole
input into ``k**l`` digits up front, for a recursion of depth ``l``, so
that every sub-problem's operand blocks are predetermined (no carries
until the end).

Signs are handled outside the split: callers pass magnitudes and track
``sign(a)*sign(b)`` separately (as every practical Toom implementation
does).
"""

from __future__ import annotations

from repro.bigint.limbs import LimbVector
from repro.util.validation import check_positive
from repro.util.words import shared_split_base

__all__ = ["split_shared_base", "split_lazy", "recombine", "lazy_depth"]


def split_shared_base(
    a: int, b: int, k: int
) -> tuple[LimbVector, LimbVector, int]:
    """Split non-negative ``a`` and ``b`` into ``k`` digits each, using the
    paper's shared power-of-two base ``B``.

    Returns ``(a_digits, b_digits, base_bits)`` with ``B = 2**base_bits``.
    """
    check_positive("k", k)
    if a < 0 or b < 0:
        raise ValueError("split operates on magnitudes; pass non-negative ints")
    B = shared_split_base(a, b, k)
    base_bits = B.bit_length() - 1
    return (
        LimbVector.from_int(a, base_bits, count=k),
        LimbVector.from_int(b, base_bits, count=k),
        base_bits,
    )


def lazy_depth(a: int, b: int, k: int, leaf_bits: int) -> int:
    """Recursion depth ``l`` so that leaf digits fit ``leaf_bits`` bits.

    Algorithm 2 sets ``l = ceil(log_k n)`` where ``n`` is the operand size
    in machine words; here we compute the smallest ``l`` with
    ``k**l * leaf_bits`` bits covering both operands.
    """
    check_positive("k", k)
    check_positive("leaf_bits", leaf_bits)
    bits = max(abs(a).bit_length(), abs(b).bit_length(), 1)
    l = 0
    while k**l * leaf_bits < bits:
        l += 1
    return l


def split_lazy(
    a: int, b: int, k: int, l: int
) -> tuple[LimbVector, LimbVector, int]:
    """Split ``a`` and ``b`` into ``k**l`` digits each (Algorithm 2).

    The base is the shared power-of-two base for ``k**l`` digits.  Returns
    ``(a_digits, b_digits, base_bits)``.
    """
    check_positive("k", k)
    if l < 0:
        raise ValueError("l must be non-negative")
    if a < 0 or b < 0:
        raise ValueError("split operates on magnitudes; pass non-negative ints")
    count = k**l
    B = shared_split_base(a, b, count)
    base_bits = B.bit_length() - 1
    return (
        LimbVector.from_int(a, base_bits, count=count),
        LimbVector.from_int(b, base_bits, count=count),
        base_bits,
    )


def recombine(digits: LimbVector) -> int:
    """Resolve carries: evaluate the digit polynomial at the base
    (Algorithm 1/2 line 16)."""
    return digits.to_int()
