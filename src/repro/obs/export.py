"""Trace exporters: Chrome/Perfetto trace-event JSON and JSONL.

**Chrome trace-event JSON** (:func:`to_chrome_trace`) follows the Trace
Event Format consumed by Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``: one process, one track ("thread") per rank, phase
spans as ``B``/``E`` duration events and everything else as instant
events.  Timestamps are *virtual* microseconds — the deterministic
``alpha*L + beta*BW + gamma*F`` cost of the rank's clock at the event —
so the rendered timeline is the modeled schedule, not wall clock.

**JSONL** (:func:`to_jsonl_lines`) emits one flat JSON object per event
for ad-hoc forensics (``jq``, pandas, grep).

Both exporters serialize with sorted keys and fixed separators over the
deterministic ``(vt, rank, seq)`` event order, so identical runs export
byte-identical artifacts — the property the determinism tests pin down.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

from repro.obs.events import (
    EV_ABORT,
    EV_FAULT,
    EV_PHASE_BEGIN,
    EV_PHASE_END,
    EV_REPLACEMENT,
    TraceEvent,
)

__all__ = [
    "to_chrome_trace",
    "to_jsonl_lines",
    "dump_chrome_trace",
    "dump_jsonl",
    "write_trace",
    "iter_phase_spans",
]

_INSTANT_SCOPES = {EV_FAULT: "p", EV_REPLACEMENT: "t", EV_ABORT: "t"}


def _event_list(trace) -> list[TraceEvent]:
    if hasattr(trace, "events"):
        return trace.events()
    return sorted(trace, key=TraceEvent.sort_key)


def _num(value: float):
    """Emit integers as ints so unit-cost traces serialize stably."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def to_chrome_trace(trace) -> dict:
    """Render a tracer (or an iterable of events) as a Chrome trace dict.

    Load the JSON-serialized result in Perfetto or ``chrome://tracing``.
    Phase spans become nested duration events per rank track; sends,
    receives, collectives, memory peaks, faults, replacements and aborts
    become instant events on the same track.
    """
    events = _event_list(trace)
    trace_events: list[dict] = []
    for rank in sorted({e.rank for e in events}):
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 0,
                "tid": rank,
                "args": {"sort_index": rank},
            }
        )
    for ev in events:
        base = {"pid": 0, "tid": ev.rank, "ts": _num(ev.vt)}
        args = {
            "f": ev.clock.f,
            "bw": ev.clock.bw,
            "l": ev.clock.l,
            "incarnation": ev.incarnation,
        }
        if ev.kind == EV_PHASE_BEGIN:
            trace_events.append(
                {**base, "ph": "B", "cat": "phase", "name": ev.phase, "args": args}
            )
        elif ev.kind == EV_PHASE_END:
            trace_events.append(
                {**base, "ph": "E", "cat": "phase", "name": ev.phase, "args": args}
            )
        else:
            for key in sorted(ev.attrs):
                args[key] = ev.attrs[key]
            trace_events.append(
                {
                    **base,
                    "ph": "i",
                    "s": _INSTANT_SCOPES.get(ev.kind, "t"),
                    "cat": ev.kind,
                    "name": ev.kind,
                    "args": args,
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual (alpha*L + beta*BW + gamma*F)",
            "source": "repro.obs",
        },
    }


def to_jsonl_lines(trace) -> Iterator[str]:
    """One deterministic JSON object per event, in (vt, rank, seq) order."""
    for ev in _event_list(trace):
        record = ev.as_dict()
        record["vt"] = _num(record["vt"])
        yield json.dumps(record, sort_keys=True, separators=(",", ":"))


def dump_chrome_trace(trace, path: str) -> None:
    """Write a Perfetto-loadable trace file (byte-deterministic)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            to_chrome_trace(trace), fh, sort_keys=True, separators=(",", ":")
        )
        fh.write("\n")


def dump_jsonl(trace, path: str) -> None:
    """Write the JSONL structured log (byte-deterministic)."""
    with open(path, "w", encoding="utf-8") as fh:
        for line in to_jsonl_lines(trace):
            fh.write(line)
            fh.write("\n")


def write_trace(trace, path: str) -> str:
    """Write ``path``, picking the format by extension: ``.jsonl`` →
    JSONL, anything else → Chrome trace JSON.  Returns the format used."""
    if path.endswith(".jsonl"):
        dump_jsonl(trace, path)
        return "jsonl"
    dump_chrome_trace(trace, path)
    return "chrome"


def iter_phase_spans(trace) -> Iterable[tuple[int, str, float, float]]:
    """Yield ``(rank, phase, vt_begin, vt_end)`` for every closed phase
    span, reconstructed from the per-rank begin/end nesting.  Spans cut
    short by a hard fault (no matching end) are closed at the rank's last
    event."""
    events = _event_list(trace)
    by_rank: dict[int, list[TraceEvent]] = {}
    for ev in events:
        by_rank.setdefault(ev.rank, []).append(ev)
    for rank in sorted(by_rank):
        stream = sorted(by_rank[rank], key=lambda e: e.seq)
        stack: list[TraceEvent] = []
        last_vt = stream[-1].vt if stream else 0.0
        for ev in stream:
            if ev.kind == EV_PHASE_BEGIN:
                stack.append(ev)
            elif ev.kind == EV_PHASE_END:
                if stack and stack[-1].phase == ev.phase:
                    begin = stack.pop()
                    yield (rank, ev.phase, begin.vt, ev.vt)
        while stack:
            begin = stack.pop()
            yield (rank, begin.phase, begin.vt, last_vt)
