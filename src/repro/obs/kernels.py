"""Kernel-level operation counters for the sequential bigint multipliers.

The ``flops`` totals the kernels return answer "how much arithmetic";
they say nothing about *shape* — how many single-limb multiplications
the run bottomed out in, how deep the recursion went, or whether the
Toom evaluation/interpolation operators came from cache.  Those are the
quantities the kernel auto-tuner (ROADMAP item 3) will tune against, so
the kernels accept an optional :class:`KernelCounters` and the perf
observatory persists them per benchmark run.

Counting is opt-in and free when off: every instrumentation site is an
``if counters is not None`` branch.  A ``KernelCounters`` is plain
single-threaded mutable state — one per kernel invocation — and
publishes into a :class:`~repro.obs.metrics.MetricsRegistry` as labeled
series:

- ``kernel_limb_mults_total{kernel=...}`` — single-word multiplications
  at the recursion leaves (the ``s``-sized hardware ops of Algorithm 1);
- ``kernel_recursion_depth{kernel=...}`` — maximum split depth (gauge);
- ``kernel_eval_cache_hits_total{kernel=...}`` /
  ``kernel_eval_cache_misses_total{kernel=...}`` — evaluation-operator
  cache effectiveness (Toom-Cook only; the U/V/W^T triples are shared
  across instances with the same ``(k, points)``).
"""

from __future__ import annotations

from typing import Any

__all__ = ["KernelCounters"]


class KernelCounters:
    """Mutable op-shape counters threaded through one kernel run."""

    __slots__ = ("limb_mults", "recursion_depth", "eval_cache_hits", "eval_cache_misses")

    def __init__(self) -> None:
        self.limb_mults = 0
        self.recursion_depth = 0
        self.eval_cache_hits = 0
        self.eval_cache_misses = 0

    def add_limb_mults(self, n: int = 1) -> None:
        """Count ``n`` single-word multiplications at a recursion leaf."""
        self.limb_mults += n

    def note_depth(self, depth: int) -> None:
        """Raise the maximum recursion depth to ``depth`` if deeper."""
        if depth > self.recursion_depth:
            self.recursion_depth = depth

    def note_eval_cache(self, hit: bool) -> None:
        """Record one evaluation-operator cache lookup."""
        if hit:
            self.eval_cache_hits += 1
        else:
            self.eval_cache_misses += 1

    def merge(self, other: "KernelCounters") -> None:
        """Fold another run's counters in (depth folds as a maximum)."""
        self.limb_mults += other.limb_mults
        self.note_depth(other.recursion_depth)
        self.eval_cache_hits += other.eval_cache_hits
        self.eval_cache_misses += other.eval_cache_misses

    def publish(self, registry: Any, kernel: str) -> Any:
        """Export into ``registry`` as series labeled ``kernel=<kernel>``."""
        registry.inc("kernel_limb_mults_total", self.limb_mults, kernel=kernel)
        registry.gauge_max("kernel_recursion_depth", self.recursion_depth, kernel=kernel)
        registry.inc("kernel_eval_cache_hits_total", self.eval_cache_hits, kernel=kernel)
        registry.inc(
            "kernel_eval_cache_misses_total", self.eval_cache_misses, kernel=kernel
        )
        return registry

    def as_dict(self) -> dict[str, int]:
        return {
            "limb_mults": self.limb_mults,
            "recursion_depth": self.recursion_depth,
            "eval_cache_hits": self.eval_cache_hits,
            "eval_cache_misses": self.eval_cache_misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelCounters(limb_mults={self.limb_mults}, "
            f"recursion_depth={self.recursion_depth}, "
            f"eval_cache_hits={self.eval_cache_hits}, "
            f"eval_cache_misses={self.eval_cache_misses})"
        )
