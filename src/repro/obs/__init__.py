"""Observability: virtual-time tracing, metrics and fault forensics.

The simulated machine counts costs (F arithmetic ops, BW words, L
messages) along the critical path, but a single (F, BW, L) triple says
nothing about *where* on the timeline a rank sent words, entered a phase,
died, or got recovered.  This subpackage turns the machine into a glass
box:

- :class:`Tracer` / :class:`RecordingTracer` — structured events
  (send/recv/collective, phase enter/exit, memory high-water marks, fault
  injection, replacement) stamped with rank, phase, the (F, BW, L) clock
  snapshot and a deterministic *virtual timestamp*
  ``alpha*L + beta*BW + gamma*F`` under a :class:`~repro.machine.costs.CostModel`.
  Traces are wall-clock-free: two runs of the same program under the same
  fault schedule export byte-identical traces.
- :class:`MetricsRegistry` — counters, gauges and power-of-two-bucket
  histograms (message-size distribution, per-phase words, recovery words,
  collective fan-in), aggregated into
  :class:`~repro.machine.engine.RunResult`.
- Exporters — Chrome/Perfetto trace-event JSON
  (:func:`to_chrome_trace`) and JSONL structured logs
  (:func:`to_jsonl_lines`).

Tracing is **off by default** and costs one attribute load + branch per
machine operation when disabled (:data:`NULL_TRACER`).  Enable it with
``Machine(trace=...)``, ``python -m repro trace`` or
``python -m repro multiply ... --trace-out out.json``.
"""

from repro.obs.events import (
    EV_ABORT,
    EV_COLLECTIVE,
    EV_FAULT,
    EV_MEM_PEAK,
    EV_PHASE_BEGIN,
    EV_PHASE_END,
    EV_RECV,
    EV_REPLACEMENT,
    EV_SEND,
    TraceEvent,
)
from repro.obs.export import (
    dump_chrome_trace,
    dump_jsonl,
    iter_phase_spans,
    to_chrome_trace,
    to_jsonl_lines,
    write_trace,
)
from repro.obs.kernels import KernelCounters
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer, make_tracer

__all__ = [
    "TraceEvent",
    "EV_SEND",
    "EV_RECV",
    "EV_COLLECTIVE",
    "EV_PHASE_BEGIN",
    "EV_PHASE_END",
    "EV_MEM_PEAK",
    "EV_FAULT",
    "EV_REPLACEMENT",
    "EV_ABORT",
    "Tracer",
    "RecordingTracer",
    "NULL_TRACER",
    "make_tracer",
    "MetricsRegistry",
    "Histogram",
    "KernelCounters",
    "to_chrome_trace",
    "to_jsonl_lines",
    "dump_chrome_trace",
    "dump_jsonl",
    "write_trace",
    "iter_phase_spans",
]
