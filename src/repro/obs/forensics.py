"""Fault forensics: a human-readable fault timeline from a trace.

The campaign's failure reports re-run a minimized fault schedule under a
:class:`~repro.obs.tracer.RecordingTracer` and render just the
fault-relevant slice of the event stream — injected faults, replacement
processors coming up, and column aborts — as one line per event in
deterministic virtual-time order.  This is the quickest answer to "what
actually happened" for a defect without replaying the full timeline in a
trace viewer (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from repro.obs.events import EV_ABORT, EV_FAULT, EV_REPLACEMENT, TraceEvent

__all__ = ["FAULT_EVENT_KINDS", "fault_events", "fault_timeline"]

FAULT_EVENT_KINDS = (EV_FAULT, EV_REPLACEMENT, EV_ABORT)


def fault_events(events: list[TraceEvent]) -> list[TraceEvent]:
    """The fault-relevant slice of an event stream, original order kept
    (pass :meth:`RecordingTracer.events` output for global vt order)."""
    return [ev for ev in events if ev.kind in FAULT_EVENT_KINDS]


def _describe(ev: TraceEvent) -> str:
    if ev.kind == EV_FAULT:
        fault_kind = ev.attrs.get("fault_kind", "hard")
        op = ev.attrs.get("op_index", "?")
        return f"{fault_kind} fault at op {op}"
    if ev.kind == EV_REPLACEMENT:
        return "replacement comes up"
    if ev.kind == EV_ABORT:
        return f"aborts task {ev.attrs.get('task', '?')}"
    return ev.kind  # pragma: no cover - filtered out by fault_events


def fault_timeline(events: list[TraceEvent]) -> list[str]:
    """One formatted line per fault/replacement/abort event, e.g.
    ``vt=41.0 rank 3/inc 0 [multiplication]: hard fault at op 7``."""
    return [
        f"vt={ev.vt:g} rank {ev.rank}/inc {ev.incarnation} "
        f"[{ev.phase}]: {_describe(ev)}"
        for ev in fault_events(events)
    ]
