"""Handlers behind ``python -m repro perf``.

Subcommands (argument parsing lives in :mod:`repro.cli`):

- ``perf list`` — suites and record counts in the trajectory store.
- ``perf compare`` — newest record per suite vs the pinned baseline;
  exits nonzero on any non-advisory regression (the CI gate).
- ``perf report`` — the trend dashboard.
- ``perf bless`` — pin a suite's newest record as its new baseline.

Directory resolution: ``--dir`` > ``REPRO_PERF_DIR`` > cwd for the
trajectory store; ``--baseline`` > ``REPRO_PERF_BASELINE`` >
``benchmarks/baselines`` for the pinned baselines.
"""

from __future__ import annotations

import json

from repro.obs.perf.compare import compare_latest, render_compare
from repro.obs.perf.report import render_dashboard
from repro.obs.perf.store import PerfStore, SchemaError

__all__ = [
    "DEFAULT_BASELINE_DIR",
    "resolve_stores",
    "cmd_list",
    "cmd_compare",
    "cmd_report",
    "cmd_bless",
]

#: Committed baselines live here unless overridden.
DEFAULT_BASELINE_DIR = "benchmarks/baselines"


def resolve_stores(args) -> tuple[PerfStore, PerfStore]:
    """(trajectory store, baseline store) from CLI args + environment."""
    from repro.util.env import perf_baseline

    store = PerfStore(args.dir)  # None -> REPRO_PERF_DIR -> cwd
    baseline_root = args.baseline or perf_baseline() or DEFAULT_BASELINE_DIR
    return store, PerfStore(baseline_root)


def _suites(args, store: PerfStore) -> list[str] | None:
    if args.suite:
        return list(args.suite)
    return None


def cmd_list(args) -> int:
    store, baseline = resolve_stores(args)
    suites = store.suites()
    if not suites:
        print(f"(no trajectory files under {store.root})")
        return 0
    for suite in suites:
        records = store.load(suite)
        pinned = "pinned" if baseline.latest(suite) is not None else "no baseline"
        newest = records[-1]
        print(
            f"{suite:<20} {len(records):>3} record(s)  "
            f"{len(newest['cells']):>4} cell(s)  "
            f"sha {newest['manifest'].get('git_sha', 'unknown')[:10]}  [{pinned}]"
        )
    return 0


def cmd_compare(args) -> int:
    store, baseline = resolve_stores(args)
    try:
        result = compare_latest(
            store,
            baseline,
            suites=_suites(args, baseline),
            wall_tolerance=args.wall_tolerance,
            wall_advisory=args.advisory_wall,
        )
    except SchemaError as exc:
        print(f"perf compare: schema error: {exc}")
        return 2
    if args.json:
        payload = {
            "suites_checked": result.suites_checked,
            "cells_checked": result.cells_checked,
            "exit_code": result.exit_code,
            "findings": [
                {
                    "suite": f.suite,
                    "kind": f.kind,
                    "cell": f.cell,
                    "baseline": f.baseline,
                    "current": f.current,
                    "advisory": f.advisory,
                    "message": f.message,
                }
                for f in result.findings
            ],
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        print(render_compare(result))
    return result.exit_code


def cmd_report(args) -> int:
    store, _ = resolve_stores(args)
    try:
        print(render_dashboard(store, suites=_suites(args, store), last=args.last))
    except SchemaError as exc:
        print(f"perf report: schema error: {exc}")
        return 2
    return 0


def cmd_bless(args) -> int:
    store, baseline = resolve_stores(args)
    suites = args.suite or store.suites()
    if not suites:
        print(f"(no trajectory files under {store.root}; nothing to bless)")
        return 1
    for suite in sorted(suites):
        record = store.latest(suite)
        if record is None:
            print(f"bless: no record for suite {suite!r} under {store.root}")
            return 1
        baseline.save(suite, [record])
        print(
            f"blessed {suite}: run_key={record['run_key']} "
            f"({len(record['cells'])} cell(s)) -> {baseline.path(suite)}"
        )
    return 0
