"""Regression comparison: newest record vs a pinned baseline.

The project's benchmark measurements split into two classes with very
different failure semantics:

- **Deterministic model cells** (F/BW/L counts, processor counts,
  exponent fits).  The simulator is virtual-time deterministic, so two
  runs of the same seed must agree *exactly*; any drift means the
  algorithms changed behaviour — a correctness signal that hard-fails.
- **Wall-clock seconds**.  Host noise is expected; they get a
  percentage tolerance band and can be demoted to advisory (CI runs on
  shared boxes, so the workflow gate passes ``--advisory-wall``).

A comparison never trusts the *current* side's extra cells: cells
present in the baseline but missing from the new record hard-fail (a
silently dropped measurement reads as "covered" otherwise), while new
cells are reported as advisory so a freshly added table does not break
the gate before the baseline is re-blessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.perf.store import PerfStore

__all__ = [
    "Finding",
    "CompareResult",
    "compare_records",
    "compare_latest",
    "render_compare",
]

#: Default wall-clock tolerance band (fraction of the baseline value).
DEFAULT_WALL_TOLERANCE = 0.25


@dataclass(frozen=True)
class Finding:
    """One comparison divergence, anchored to ``suite`` / ``cell``."""

    suite: str
    kind: str  # cell-drift | cell-missing | cell-new | wall-drift | suite-missing
    cell: str
    baseline: float | None
    current: float | None
    message: str
    advisory: bool = False


@dataclass
class CompareResult:
    findings: list[Finding] = field(default_factory=list)
    suites_checked: list[str] = field(default_factory=list)
    cells_checked: int = 0

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if not f.advisory]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def _drift(baseline: float, current: float) -> str:
    if baseline == 0:
        return "from 0"
    return f"{100.0 * (current - baseline) / baseline:+.1f}%"


def compare_records(
    baseline: dict,
    current: dict,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    wall_advisory: bool = False,
) -> list[Finding]:
    """All divergences between one baseline record and one current record.

    Exact-equality for every baseline cell; ``wall_tolerance`` band for
    wall seconds.  Deterministic: findings come out in sorted cell order.
    """
    if wall_tolerance < 0:
        raise ValueError("wall_tolerance must be non-negative")
    suite = baseline["suite"]
    findings: list[Finding] = []
    base_cells, cur_cells = baseline["cells"], current["cells"]
    for cell in sorted(base_cells):
        want = base_cells[cell]
        if cell not in cur_cells:
            findings.append(
                Finding(
                    suite=suite,
                    kind="cell-missing",
                    cell=cell,
                    baseline=want,
                    current=None,
                    message=f"cell {cell!r} present in baseline but not measured",
                )
            )
            continue
        got = cur_cells[cell]
        if got != want:
            findings.append(
                Finding(
                    suite=suite,
                    kind="cell-drift",
                    cell=cell,
                    baseline=want,
                    current=got,
                    message=(
                        f"exact cell {cell!r} drifted: {_fmt(want)} -> "
                        f"{_fmt(got)} ({_drift(want, got)}); deterministic "
                        "model costs changing means behaviour changed"
                    ),
                )
            )
    for cell in sorted(cur_cells):
        if cell not in base_cells:
            findings.append(
                Finding(
                    suite=suite,
                    kind="cell-new",
                    cell=cell,
                    baseline=None,
                    current=cur_cells[cell],
                    message=(
                        f"cell {cell!r} is new (not in baseline); bless to pin it"
                    ),
                    advisory=True,
                )
            )
    base_wall, cur_wall = baseline.get("wall", {}), current.get("wall", {})
    for table in sorted(base_wall):
        if table not in cur_wall:
            continue  # wall cells are best-effort; absence is not a signal
        want, got = base_wall[table], cur_wall[table]
        if got > want * (1.0 + wall_tolerance):
            findings.append(
                Finding(
                    suite=suite,
                    kind="wall-drift",
                    cell=table,
                    baseline=want,
                    current=got,
                    message=(
                        f"wall-clock of {table!r} regressed beyond the "
                        f"{100 * wall_tolerance:.0f}% band: {want:.3f}s -> "
                        f"{got:.3f}s ({_drift(want, got)})"
                    ),
                    advisory=wall_advisory,
                )
            )
    return findings


def compare_latest(
    store: PerfStore,
    baseline: PerfStore,
    suites: list[str] | None = None,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    wall_advisory: bool = False,
) -> CompareResult:
    """Compare each suite's newest record against its pinned baseline.

    ``suites`` defaults to every suite the *baseline* store pins — the
    committed baseline set is the gate's contract, so a trajectory that
    stopped being produced fails loudly rather than shrinking coverage.
    """
    result = CompareResult()
    if suites is None:
        suites = baseline.suites()
    for suite in sorted(suites):
        base_rec = baseline.latest(suite)
        cur_rec = store.latest(suite)
        result.suites_checked.append(suite)
        if base_rec is None:
            result.findings.append(
                Finding(
                    suite=suite,
                    kind="suite-missing",
                    cell="",
                    baseline=None,
                    current=None,
                    message=f"no baseline record for suite {suite!r} "
                    f"under {baseline.root}",
                )
            )
            continue
        if cur_rec is None:
            result.findings.append(
                Finding(
                    suite=suite,
                    kind="suite-missing",
                    cell="",
                    baseline=None,
                    current=None,
                    message=f"no current record for suite {suite!r} under "
                    f"{store.root} (did the benchmark run?)",
                )
            )
            continue
        result.cells_checked += len(base_rec["cells"])
        result.findings.extend(
            compare_records(
                base_rec,
                cur_rec,
                wall_tolerance=wall_tolerance,
                wall_advisory=wall_advisory,
            )
        )
    return result


def render_compare(result: CompareResult) -> str:
    """Deterministic text report: one line per finding plus a verdict."""
    lines = []
    for f in result.findings:
        tag = "advisory" if f.advisory else "FAIL"
        lines.append(f"[{tag}] {f.suite}: {f.message}")
    regressions = len(result.regressions)
    advisories = len(result.findings) - regressions
    verdict = "PASS" if regressions == 0 else "FAIL"
    lines.append(
        f"perf compare: {verdict} — {len(result.suites_checked)} suite(s), "
        f"{result.cells_checked} exact cell(s) checked, "
        f"{regressions} regression(s), {advisories} advisory"
    )
    return "\n".join(lines)
