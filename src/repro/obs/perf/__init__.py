"""Perf observatory: persistent benchmark telemetry and regression gates.

The benchmark harness regenerates the paper's tables from *measured*
simulator counts, but a rendered ``.txt`` table is a dead end: no run is
comparable to any previous run.  This subpackage gives every benchmark
run a durable, schema-versioned JSON record — a run manifest (git sha,
host, Python version, seeds, ``REPRO_*`` configuration) plus flat metric
cells pulled from :class:`~repro.obs.metrics.MetricsRegistry` snapshots
and the benchmarks' own table data — appended to a per-suite
*trajectory file* (``BENCH_<suite>.json``).

- :mod:`repro.obs.perf.store` — the trajectory store: load/validate/
  append records, byte-deterministic serialization.
- :mod:`repro.obs.perf.record` — record construction: the run manifest
  and cell/wall accumulation helpers.
- :mod:`repro.obs.perf.compare` — diff the newest record against a
  pinned baseline.  Deterministic model costs (F/BW/L counts, processor
  counts, exponent fits) are compared **exactly** — any drift is a
  correctness signal, not noise — while wall-clock cells get a
  percentage tolerance band.
- :mod:`repro.obs.perf.report` — the ASCII/markdown trend dashboard
  (sparkline deltas per suite per metric).

Front end: ``python -m repro perf {list,compare,report,bless}`` (see
docs/OBSERVABILITY.md, "Perf observatory").  The only writers of
trajectory files are :class:`PerfStore` and the ``benchmarks/_common.emit``
funnel — enforced by lint rule ``OBS001``.
"""

from repro.obs.perf.compare import (
    CompareResult,
    Finding,
    compare_latest,
    compare_records,
    render_compare,
)
from repro.obs.perf.record import (
    add_cells,
    add_wall,
    new_record,
    run_manifest,
)
from repro.obs.perf.report import render_dashboard, render_trend
from repro.obs.perf.store import (
    SCHEMA_VERSION,
    PerfStore,
    SchemaError,
    validate_record,
)

__all__ = [
    "SCHEMA_VERSION",
    "PerfStore",
    "SchemaError",
    "validate_record",
    "run_manifest",
    "new_record",
    "add_cells",
    "add_wall",
    "Finding",
    "CompareResult",
    "compare_records",
    "compare_latest",
    "render_compare",
    "render_trend",
    "render_dashboard",
]
