"""The trajectory store: schema-versioned perf records on disk.

One *suite* (a benchmark module, ``bench_scaling`` -> suite ``scaling``)
owns one trajectory file ``BENCH_<suite>.json`` holding a JSON array of
records, oldest first.  A record is::

    {
      "schema": 1,
      "suite": "scaling",
      "run_key": "4000a06b2c.1234",
      "manifest": {"git_sha": ..., "hostname": ..., "python": ...,
                   "platform": ..., "env": {"REPRO_JOBS": "4", ...},
                   "seeds": {...}},
      "cells": {"<table>/<cell>": <number>, ...},
      "wall": {"<table>": <seconds>, ...}
    }

``cells`` hold the deterministic model measurements (F/BW/L counts,
processor counts, fitted exponents); ``wall`` holds host wall-clock
seconds, kept apart because only cells are compared exactly.

Serialization is byte-deterministic (sorted keys, fixed separators,
trailing newline): identical record lists produce identical files, so a
clean re-run of the same seed round-trips byte-identically.  The store
never reads the wall clock or entropy — manifests are built by the
caller (:mod:`repro.obs.perf.record`).

This module and ``benchmarks/_common.emit`` are the only components
allowed to write trajectory files or ``benchmarks/results/`` renderings;
lint rule ``OBS001`` bans writes anywhere else.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "TRAJECTORY_PREFIX",
    "SchemaError",
    "validate_record",
    "trajectory_filename",
    "PerfStore",
]

#: Bump when the record shape changes; readers reject unknown versions.
SCHEMA_VERSION = 1

#: Trajectory files are ``BENCH_<suite>.json``.
TRAJECTORY_PREFIX = "BENCH_"

_SUITE_RE = re.compile(r"^[a-z0-9][a-z0-9_]*$")

#: Manifest keys every record must carry (all strings).
_MANIFEST_KEYS = ("git_sha", "hostname", "python", "platform")


class SchemaError(ValueError):
    """A record (or trajectory file) does not match the schema."""


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise SchemaError(message)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_record(record: Any) -> None:
    """Raise :class:`SchemaError` unless ``record`` is a valid v1 record."""
    _check(isinstance(record, dict), "record must be an object")
    _check(
        record.get("schema") == SCHEMA_VERSION,
        f"unsupported schema version {record.get('schema')!r} "
        f"(expected {SCHEMA_VERSION})",
    )
    suite = record.get("suite")
    _check(
        isinstance(suite, str) and bool(_SUITE_RE.match(suite)),
        f"suite must match {_SUITE_RE.pattern}, got {suite!r}",
    )
    _check(
        isinstance(record.get("run_key"), str) and record["run_key"] != "",
        "run_key must be a non-empty string",
    )
    manifest = record.get("manifest")
    _check(isinstance(manifest, dict), "manifest must be an object")
    for key in _MANIFEST_KEYS:
        _check(
            isinstance(manifest.get(key), str),
            f"manifest.{key} must be a string",
        )
    env = manifest.get("env", {})
    _check(isinstance(env, dict), "manifest.env must be an object")
    for key in sorted(env, key=repr):
        _check(
            isinstance(key, str) and isinstance(env[key], str),
            "manifest.env must map strings to strings",
        )
    seeds = manifest.get("seeds", {})
    _check(isinstance(seeds, dict), "manifest.seeds must be an object")
    cells = record.get("cells")
    _check(isinstance(cells, dict), "cells must be an object")
    for key in sorted(cells, key=repr):
        _check(isinstance(key, str), "cell names must be strings")
        _check(
            _is_number(cells[key]),
            f"cell {key!r} must be a number, got {cells[key]!r}",
        )
    wall = record.get("wall", {})
    _check(isinstance(wall, dict), "wall must be an object")
    for key in sorted(wall, key=repr):
        _check(isinstance(key, str), "wall table names must be strings")
        _check(
            _is_number(wall[key]) and wall[key] >= 0,
            f"wall {key!r} must be a non-negative number",
        )


def trajectory_filename(suite: str) -> str:
    """``scaling`` -> ``BENCH_scaling.json``."""
    if not _SUITE_RE.match(suite):
        raise SchemaError(f"suite must match {_SUITE_RE.pattern}, got {suite!r}")
    return f"{TRAJECTORY_PREFIX}{suite}.json"


class PerfStore:
    """Load, validate and append per-suite trajectory files under ``root``.

    ``root`` defaults to ``REPRO_PERF_DIR`` (see :mod:`repro.util.env`) or,
    failing that, the current working directory — which is the repository
    root both in CI and for a checkout-local ``python -m repro perf``.
    """

    def __init__(self, root: str | Path | None = None):
        if root is None:
            from repro.util.env import perf_dir

            root = perf_dir() or "."
        self.root = Path(root)

    def path(self, suite: str) -> Path:
        return self.root / trajectory_filename(suite)

    def suites(self) -> list[str]:
        """Suites that have a trajectory file under ``root``, sorted."""
        if not self.root.is_dir():
            return []
        names = []
        for p in sorted(self.root.glob(f"{TRAJECTORY_PREFIX}*.json")):
            suite = p.name[len(TRAJECTORY_PREFIX) : -len(".json")]
            if _SUITE_RE.match(suite):
                names.append(suite)
        return names

    def load(self, suite: str) -> list[dict]:
        """All records for ``suite``, oldest first ([] when absent)."""
        path = self.path(suite)
        if not path.exists():
            return []
        try:
            records = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path} is not valid JSON: {exc}") from exc
        _check(isinstance(records, list), f"{path} must hold a JSON array")
        for record in records:
            validate_record(record)
            _check(
                record["suite"] == suite,
                f"{path} holds a record for suite {record['suite']!r}",
            )
        return records

    def save(self, suite: str, records: list[dict]) -> Path:
        """Validate and write the full trajectory (byte-deterministic)."""
        for record in records:
            validate_record(record)
        path = self.path(suite)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(records, sort_keys=True, indent=1, separators=(",", ": "))
        path.write_text(text + "\n", encoding="utf-8")
        return path

    def append(self, suite: str, record: dict) -> Path:
        """Append one record to the suite's trajectory."""
        records = self.load(suite)
        records.append(record)
        return self.save(suite, records)

    def upsert(self, suite: str, record: dict) -> Path:
        """Replace the existing record with the same ``run_key`` (one
        record per benchmark process: successive ``emit()`` calls fold
        into it), or append when the key is new."""
        records = self.load(suite)
        for i in range(len(records) - 1, -1, -1):
            if records[i]["run_key"] == record["run_key"]:
                records[i] = record
                break
        else:
            records.append(record)
        return self.save(suite, records)

    def latest(self, suite: str) -> dict | None:
        """The newest record, or ``None`` for an empty/missing trajectory."""
        records = self.load(suite)
        return records[-1] if records else None
