"""Trend dashboard: how each metric moved across a suite's trajectory.

``render_trend`` turns one suite's record list into a fixed-width table
with a sparkline per cell — enough to spot "F cost stepped up three
commits ago" without loading the JSON into anything.  ``render_dashboard``
stacks every suite in a store.  Output is deterministic: records are
taken in trajectory (append) order and cells in sorted order.
"""

from __future__ import annotations

from repro.obs.perf.store import PerfStore

__all__ = ["sparkline", "render_trend", "render_dashboard"]

#: Eight-level block glyphs, lowest to highest.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Map ``values`` onto block glyphs (min..max -> lowest..highest).

    A constant series renders as a flat mid-level line, so "nothing
    moved" is visually distinct from "something moved".
    """
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_GLYPHS[3] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[idx])
    return "".join(out)


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def _delta(first: float, last: float) -> str:
    if last == first:
        return "="
    if first == 0:
        return "new"
    return f"{100.0 * (last - first) / first:+.1f}%"


def render_trend(
    suite: str, records: list[dict], last: int | None = None
) -> str:
    """One suite's trend table over its newest ``last`` records."""
    if last is not None:
        if last < 1:
            raise ValueError("last must be >= 1")
        records = records[-last:]
    header = f"## {suite} ({len(records)} record(s))"
    if not records:
        return header + "\n(no records)"
    newest = records[-1]
    manifest = newest.get("manifest", {})
    header += (
        f"\nnewest: run_key={newest['run_key']} "
        f"sha={manifest.get('git_sha', 'unknown')[:10]} "
        f"python={manifest.get('python', '?')}"
    )
    names = sorted({name for rec in records for name in rec["cells"]})
    wall_names = sorted({name for rec in records for name in rec.get("wall", {})})
    rows = []
    for name in names:
        series = [rec["cells"][name] for rec in records if name in rec["cells"]]
        rows.append(
            (
                name,
                _fmt(series[0]),
                _fmt(series[-1]),
                _delta(series[0], series[-1]),
                sparkline(series),
            )
        )
    for name in wall_names:
        series = [
            rec["wall"][name] for rec in records if name in rec.get("wall", {})
        ]
        rows.append(
            (
                f"wall/{name}",
                f"{series[0]:.3f}s",
                f"{series[-1]:.3f}s",
                _delta(series[0], series[-1]),
                sparkline(series),
            )
        )
    cols = ("cell", "first", "last", "delta", "trend")
    widths = [
        max(len(cols[i]), *(len(r[i]) for r in rows)) if rows else len(cols[i])
        for i in range(len(cols))
    ]
    lines = [header]
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_dashboard(
    store: PerfStore,
    suites: list[str] | None = None,
    last: int | None = None,
) -> str:
    """Every suite's trend, stacked — the ``repro perf report`` payload."""
    if suites is None:
        suites = store.suites()
    if not suites:
        return f"(no trajectory files under {store.root})"
    sections = [f"# Perf observatory — {len(suites)} suite(s) under {store.root}"]
    for suite in sorted(suites):
        sections.append(render_trend(suite, store.load(suite), last=last))
    return "\n\n".join(sections)
