"""Record construction: run manifests and cell accumulation.

A record's *manifest* answers "what produced these numbers" — git sha,
host, Python version, platform, the ``REPRO_*`` environment and the
benchmark seeds — while its *cells* carry the measurements themselves,
flat-keyed ``<table>/<cell>`` so two records diff cell-by-cell without
any schema knowledge.  Manifests never feed comparisons (two hosts may
legitimately produce byte-identical cells); they exist for forensics.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Mapping

from repro.obs.perf.store import SCHEMA_VERSION, validate_record
from repro.util.env import scaled_timeout

__all__ = ["git_sha", "run_manifest", "new_record", "add_cells", "add_wall"]

#: Environment prefix captured into the manifest.
_ENV_PREFIX = "REPRO_"


def git_sha(cwd: str | None = None) -> str:
    """The checkout's HEAD sha, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=scaled_timeout(10.0),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_manifest(
    seeds: Mapping[str, Any] | None = None, cwd: str | None = None
) -> dict:
    """Build the manifest for one benchmark process."""
    env = {
        key: os.environ[key]
        for key in sorted(os.environ)
        if key.startswith(_ENV_PREFIX)
    }
    return {
        "git_sha": git_sha(cwd),
        "hostname": platform.node() or "unknown",
        "python": platform.python_version(),
        "platform": sys.platform,
        "env": env,
        "seeds": dict(seeds or {}),
    }


def new_record(suite: str, run_key: str, manifest: Mapping[str, Any]) -> dict:
    """A fresh, empty (but schema-valid) record."""
    record = {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "run_key": run_key,
        "manifest": dict(manifest),
        "cells": {},
        "wall": {},
    }
    validate_record(record)
    return record


def add_cells(record: dict, table: str, cells: Mapping[str, Any]) -> None:
    """Fold one table's cells into ``record`` under ``<table>/<cell>``.

    Non-numeric values (status strings, labels) are skipped: cells carry
    measurements only.  Re-adding a table overwrites its cells — emits
    are idempotent per run.
    """
    for name in sorted(cells, key=repr):
        value = cells[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        record["cells"][f"{table}/{name}"] = value


def add_wall(record: dict, table: str, seconds: float) -> None:
    """Record one table's host wall-clock seconds."""
    if seconds < 0:
        raise ValueError(f"wall seconds must be non-negative, got {seconds!r}")
    record["wall"][table] = seconds
