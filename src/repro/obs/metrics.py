"""Run-level metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is the aggregate companion to the event
stream: where the tracer answers "what happened when", the registry
answers "how much, in total" — message-size distribution, words moved per
phase, recovery traffic per fault, collective fan-in.

Metrics are keyed by ``(name, labels)`` where ``labels`` is a sorted
tuple of ``(key, value)`` pairs, Prometheus-style.  All mutation goes
through one lock (rank threads record concurrently); all read-out is
sorted, so exported snapshots are deterministic regardless of thread
interleaving.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["Histogram", "MetricsRegistry", "publish_run_metrics", "phase_cost"]


def _label_key(labels: dict[str, Any]) -> tuple:
    return tuple(sorted(labels.items()))


class Histogram:
    """Power-of-two-bucket histogram of non-negative observations.

    Bucket ``e`` counts observations ``v`` with ``2**(e-1) < v <= 2**e``
    (bucket 0 holds ``v <= 1``).  Exact ``count``/``total``/``min``/``max``
    are kept alongside.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram observations must be non-negative")
        exp = 0 if value <= 1 else (int(value - 1)).bit_length()
        self.buckets[exp] = self.buckets.get(exp, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """The ``q``-th percentile estimate, or ``None`` when empty.

        Buckets hold ranges, so the estimate is the upper bound of the
        bucket containing the rank-``ceil(q/100 * count)`` observation,
        clamped into ``[min, max]``.  The power-of-two bucketing bounds
        the error: the estimate never exceeds twice the true value, and
        edge percentiles are exact (a 1-sample histogram returns the
        sample; ``percentile(100)`` always returns ``max``).
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q!r}")
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        rank = max(1, -(-int(q * self.count) // 100))  # ceil(q/100 * count)
        cumulative = 0
        for exp in sorted(self.buckets):
            cumulative += self.buckets[exp]
            if cumulative >= rank:
                upper = float(2**exp) if exp > 0 else 1.0
                return min(max(upper, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        for exp in sorted(other.buckets):
            self.buckets[exp] = self.buckets.get(exp, 0) + other.buckets[exp]
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            self.min = bound if self.min is None else min(self.min, bound)
            self.max = bound if self.max is None else max(self.max, bound)

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(e): self.buckets[e] for e in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[tuple, float] = {}  # guarded-by: _lock
        self._gauges: dict[tuple, float] = {}  # guarded-by: _lock
        self._histograms: dict[tuple, Histogram] = {}  # guarded-by: _lock

    # -- recording ---------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to the counter ``name{labels}`` (counters are
        monotonic: negative increments are rejected)."""
        if value < 0:
            raise ValueError("counters only go up")
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = value

    def gauge_max(self, name: str, value: float, **labels: Any) -> None:
        """Raise the gauge ``name{labels}`` to ``value`` if higher
        (high-water-mark semantics)."""
        key = (name, _label_key(labels))
        with self._lock:
            if value > self._gauges.get(key, float("-inf")):
                self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        key = (name, _label_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    # -- reading -----------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0)

    def gauge(self, name: str, **labels: Any) -> float | None:
        with self._lock:
            return self._gauges.get((name, _label_key(labels)))

    def histogram(self, name: str, **labels: Any) -> Histogram | None:
        with self._lock:
            return self._histograms.get((name, _label_key(labels)))

    def counters_by_label(self, name: str, label: str) -> dict[Any, float]:
        """All series of counter ``name`` keyed by one label's value
        (e.g. per-phase words keyed by ``phase``)."""
        out: dict[Any, float] = {}
        with self._lock:
            # repr-keyed sort: label values may mix types, and the output
            # dict's insertion order must not depend on recording order.
            series = sorted(self._counters.items(), key=lambda kv: repr(kv[0]))
        for (n, labels), v in series:
            if n != name:
                continue
            d = dict(labels)
            if label in d:
                out[d[label]] = out.get(d[label], 0) + v
        return out

    def as_dict(self) -> dict[str, Any]:
        """Deterministic snapshot of every series (sorted keys)."""

        def fmt(key: tuple) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        with self._lock:
            return {
                "counters": {fmt(k): self._counters[k] for k in sorted(self._counters)},
                "gauges": {fmt(k): self._gauges[k] for k in sorted(self._gauges)},
                "histograms": {
                    fmt(k): self._histograms[k].as_dict()
                    for k in sorted(self._histograms)
                },
            }

    def labeled_snapshot(self) -> dict[str, float]:
        """Flat, deterministic ``{"name{k=v,...}": number}`` view of every
        series — the shape perf records store as cells
        (:mod:`repro.obs.perf`).  Counters and gauges map directly;
        histograms expand to their exact ``count``/``total``/``min``/
        ``max`` summary fields so the snapshot stays exactly comparable
        across runs (percentiles are estimates and are left out).
        """

        def fmt(key: tuple) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        out: dict[str, float] = {}
        with self._lock:
            for key in sorted(self._counters, key=repr):
                out[fmt(key)] = self._counters[key]
            for key in sorted(self._gauges, key=repr):
                out[fmt(key)] = self._gauges[key]
            for key in sorted(self._histograms, key=repr):
                hist = self._histograms[key]
                base = fmt(key)
                out[f"{base}/count"] = hist.count
                out[f"{base}/total"] = hist.total
                if hist.min is not None:
                    out[f"{base}/min"] = hist.min
                if hist.max is not None:
                    out[f"{base}/max"] = hist.max
        return out

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)

    # -- transport ----------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        """Pickle support (worker-pool transport): ship the series maps,
        not the lock."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": dict(self._histograms),
            }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._lock = threading.Lock()
        with self._lock:
            self._counters = state["counters"]
            self._gauges = state["gauges"]
            self._histograms = state["histograms"]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s series into this registry: counters add,
        gauges overwrite (in merge order), histograms fold.

        Intended for reassembling per-worker registries whose series are
        disjoint (e.g. labeled per variant) or additive; merging two
        registries that *set* the same gauge to different values keeps
        the later merge's value, so such series must be disjoint for the
        result to be order-independent.
        """
        snapshot = other.__getstate__()
        with self._lock:
            for key in sorted(snapshot["counters"], key=repr):
                self._counters[key] = (
                    self._counters.get(key, 0) + snapshot["counters"][key]
                )
            for key in sorted(snapshot["gauges"], key=repr):
                self._gauges[key] = snapshot["gauges"][key]
            for key in sorted(snapshot["histograms"], key=repr):
                hist = self._histograms.get(key)
                if hist is None:
                    hist = self._histograms[key] = Histogram()
                hist.merge(snapshot["histograms"][key])


def publish_run_metrics(run: Any, registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Publish a finished run's aggregate costs into a registry.

    This is the one aggregation path shared by benchmark tables and the
    traced view: per-phase critical-path costs (element-wise max over
    ranks) land as ``phase_cost{phase=...,component=f|bw|l}`` gauges, the
    overall critical path as ``critical_path{component=...}``, per-rank
    memory high-water marks as ``peak_memory_words{rank=...}``, and the
    fault tally as ``faults_fired``.  Gauge semantics make republishing
    the same run idempotent.

    By default the run's own registry (``run.metrics``, populated by the
    tracer when the run was traced) is extended in place, so event-derived
    counters and ledger-derived gauges live side by side; untraced runs
    get a fresh registry.
    """
    reg = registry
    if reg is None:
        reg = run.metrics if getattr(run, "metrics", None) is not None else MetricsRegistry()
    for phase, counts in sorted(run.phase_costs.items(), key=lambda kv: kv[0]):
        reg.gauge_set("phase_cost", counts.f, phase=phase, component="f")
        reg.gauge_set("phase_cost", counts.bw, phase=phase, component="bw")
        reg.gauge_set("phase_cost", counts.l, phase=phase, component="l")
    critical = run.critical_path
    reg.gauge_set("critical_path", critical.f, component="f")
    reg.gauge_set("critical_path", critical.bw, component="bw")
    reg.gauge_set("critical_path", critical.l, component="l")
    for rank, peak in enumerate(run.peak_memory):
        reg.gauge_max("peak_memory_words", peak, rank=rank)
    reg.gauge_set("faults_fired", len(run.fault_log))
    return reg


def phase_cost(registry: MetricsRegistry, phase: str) -> Any:
    """Read one phase's (F, BW, L) back from published ``phase_cost``
    gauges as a :class:`~repro.machine.costs.Counts`, or ``None`` when the
    phase was never published."""
    from repro.machine.costs import Counts

    f = registry.gauge("phase_cost", phase=phase, component="f")
    bw = registry.gauge("phase_cost", phase=phase, component="bw")
    latency = registry.gauge("phase_cost", phase=phase, component="l")
    if f is None and bw is None and latency is None:
        return None
    return Counts(int(f or 0), int(bw or 0), int(latency or 0))
