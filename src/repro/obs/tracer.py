"""Tracers: the machine-facing recording API.

Two implementations share one interface:

- :data:`NULL_TRACER` (a plain :class:`Tracer`) — ``enabled`` is False and
  every hook is a no-op.  Machine hot paths guard each hook call with
  ``if tracer.enabled:``, so a disabled machine pays one attribute load
  and one branch per operation and never snapshots a clock.
- :class:`RecordingTracer` — appends :class:`~repro.obs.events.TraceEvent`
  records to **per-rank streams** (each stream is written only by its own
  rank's thread, so event order within a rank is deterministic and
  lock-free) and mirrors the aggregate view into a
  :class:`~repro.obs.metrics.MetricsRegistry`.

Virtual timestamps come from the rank's (F, BW, L) clock snapshot under
the tracer's :class:`~repro.machine.costs.CostModel`:
``vt = alpha*L + beta*BW + gamma*F``.  Because clocks are logical, the
same program under the same fault schedule produces the same timestamps
on every run — thread scheduling cannot leak in.
"""

from __future__ import annotations

from typing import Any

from repro.machine.costs import CostModel, Counts
from repro.obs.events import (
    EV_ABORT,
    EV_COLLECTIVE,
    EV_FAULT,
    EV_MEM_PEAK,
    EV_PHASE_BEGIN,
    EV_PHASE_END,
    EV_RECV,
    EV_REPLACEMENT,
    EV_SEND,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry

__all__ = ["Tracer", "RecordingTracer", "NULL_TRACER", "make_tracer"]


class Tracer:
    """No-op tracer; the base of the recording one.

    Hooks take the rank's clock *snapshot* (an immutable
    :class:`~repro.machine.costs.Counts`) so the recording tracer never
    reads mutable machine state off-thread.
    """

    #: Hot paths check this before snapshotting a clock or calling a hook.
    enabled: bool = False

    def on_send(
        self, rank: int, phase: str, clock: Counts, incarnation: int,
        dest: int, tag: int, words: int, hops: int,
    ) -> None:
        pass

    def on_recv(
        self, rank: int, phase: str, clock: Counts, incarnation: int,
        source: int, tag: int, words: int,
    ) -> None:
        pass

    def on_collective(
        self, rank: int, phase: str, clock: Counts, incarnation: int,
        op: str, group_size: int, fan_in: int, words: int,
        modeled: bool = False,
    ) -> None:
        pass

    def on_phase_begin(
        self, rank: int, phase: str, clock: Counts, incarnation: int
    ) -> None:
        pass

    def on_phase_end(
        self, rank: int, phase: str, clock: Counts, incarnation: int
    ) -> None:
        pass

    def on_mem_peak(
        self, rank: int, phase: str, clock: Counts, incarnation: int,
        in_use: int, peak: int,
    ) -> None:
        pass

    def on_fault(
        self, rank: int, phase: str, clock: Counts, incarnation: int,
        fault_kind: str, op_index: int,
    ) -> None:
        pass

    def on_replacement(
        self, rank: int, phase: str, clock: Counts, incarnation: int
    ) -> None:
        pass

    def on_abort(
        self, rank: int, phase: str, clock: Counts, incarnation: int, task: int
    ) -> None:
        pass


#: The shared disabled tracer (stateless, safe to reuse across machines).
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Records structured events in virtual time plus aggregate metrics."""

    enabled = True

    def __init__(
        self,
        model: CostModel | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.model = model or CostModel()
        self.metrics = metrics or MetricsRegistry()
        self._streams: dict[int, list[TraceEvent]] = {}

    # -- event plumbing ----------------------------------------------------
    def _record(
        self,
        kind: str,
        rank: int,
        phase: str,
        clock: Counts,
        incarnation: int,
        **attrs: Any,
    ) -> TraceEvent:
        # Per-rank streams are only ever appended to by the owning rank's
        # thread; dict insertion is GIL-atomic, so no lock is needed.
        stream = self._streams.get(rank)
        if stream is None:
            stream = self._streams.setdefault(rank, [])
        event = TraceEvent(
            kind=kind,
            rank=rank,
            seq=len(stream),
            phase=phase,
            vt=self.model.runtime(clock),
            clock=clock,
            incarnation=incarnation,
            attrs=attrs,
        )
        stream.append(event)
        return event

    # -- reading -----------------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """All events, deterministically ordered by (vt, rank, seq)."""
        merged: list[TraceEvent] = []
        for rank in sorted(self._streams):
            merged.extend(self._streams[rank])
        merged.sort(key=TraceEvent.sort_key)
        return merged

    def events_for(self, rank: int) -> list[TraceEvent]:
        """One rank's stream in its own (program) order."""
        return list(self._streams.get(rank, ()))

    def ranks(self) -> list[int]:
        return sorted(self._streams)

    def __len__(self) -> int:
        return sum(len(s) for s in self._streams.values())

    # -- hooks -------------------------------------------------------------
    def on_send(self, rank, phase, clock, incarnation, dest, tag, words, hops):
        self._record(
            EV_SEND, rank, phase, clock, incarnation,
            dest=dest, tag=tag, words=words, hops=hops,
        )
        m = self.metrics
        m.inc("messages_total")
        m.inc("phase_words", words, phase=phase)
        m.observe("message_size_words", words)
        if phase == "recovery":
            m.inc("recovery_words_total", words)

    def on_recv(self, rank, phase, clock, incarnation, source, tag, words):
        self._record(
            EV_RECV, rank, phase, clock, incarnation,
            source=source, tag=tag, words=words,
        )

    def on_collective(
        self, rank, phase, clock, incarnation, op, group_size, fan_in, words,
        modeled=False,
    ):
        self._record(
            EV_COLLECTIVE, rank, phase, clock, incarnation,
            op=op, group_size=group_size, fan_in=fan_in, words=words,
        )
        m = self.metrics
        m.inc("collectives_total", op=op)
        # fan_in is 0 on ranks that only contribute (leaves of the tree);
        # the fan-in distribution tracks the aggregating ends.
        if fan_in > 0:
            m.observe("collective_fan_in", fan_in)
        # Counted collectives move their words through traced sends, which
        # already feed the word metrics; modeled ones (Lemma 2.5 transport)
        # bypass send/recv, so their words are accounted here instead.
        if modeled and words:
            m.inc("phase_words", words, phase=phase)
            if phase == "recovery":
                m.inc("recovery_words_total", words)

    def on_phase_begin(self, rank, phase, clock, incarnation):
        self._record(EV_PHASE_BEGIN, rank, phase, clock, incarnation)

    def on_phase_end(self, rank, phase, clock, incarnation):
        self._record(EV_PHASE_END, rank, phase, clock, incarnation)

    def on_mem_peak(self, rank, phase, clock, incarnation, in_use, peak):
        self._record(
            EV_MEM_PEAK, rank, phase, clock, incarnation,
            in_use=in_use, peak=peak,
        )
        self.metrics.gauge_max("peak_memory_words", peak, rank=rank)

    def on_fault(self, rank, phase, clock, incarnation, fault_kind, op_index):
        self._record(
            EV_FAULT, rank, phase, clock, incarnation,
            fault_kind=fault_kind, op_index=op_index,
        )
        self.metrics.inc("faults_total", kind=fault_kind)

    def on_replacement(self, rank, phase, clock, incarnation):
        self._record(EV_REPLACEMENT, rank, phase, clock, incarnation)
        self.metrics.inc("replacements_total")

    def on_abort(self, rank, phase, clock, incarnation, task):
        self._record(EV_ABORT, rank, phase, clock, incarnation, task=task)
        self.metrics.inc("aborts_total")

    # -- forensics ---------------------------------------------------------
    def recovery_words_per_fault(self) -> float:
        """Recovery traffic attributed per hard fault (0 when faultless)."""
        hard = self.metrics.counter("faults_total", kind="hard")
        if not hard:
            return 0.0
        return self.metrics.counter("recovery_words_total") / hard


def make_tracer(trace) -> Tracer:
    """Normalize the ``Machine(trace=...)`` argument.

    ``None``/``False`` → the shared no-op tracer; ``True`` → a fresh
    :class:`RecordingTracer` with the unit cost model; a
    :class:`~repro.machine.costs.CostModel` → a fresh recorder under that
    model; a :class:`Tracer` instance → itself.
    """
    if trace is None or trace is False:
        return NULL_TRACER
    if trace is True:
        return RecordingTracer()
    if isinstance(trace, CostModel):
        return RecordingTracer(model=trace)
    if isinstance(trace, Tracer):
        return trace
    raise TypeError(f"trace must be None, bool, CostModel or Tracer, not {trace!r}")
