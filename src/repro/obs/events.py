"""The trace event model.

One flat record type covers every observable machine occurrence; the
``kind`` field discriminates.  Every event carries:

- ``rank`` / ``incarnation`` — who (a replacement processor is the same
  rank with a higher incarnation),
- ``phase`` — the algorithm phase the rank was in (``evaluation``,
  ``multiplication``, ``interpolation``, ``code-creation``, ``recovery``,
  or ``init`` outside any phase),
- ``clock`` — the rank's (F, BW, L) vector-clock snapshot at the event,
- ``vt`` — the *virtual timestamp* ``alpha*L + beta*BW + gamma*F`` of that
  snapshot under the tracer's cost model.  Virtual time is per-rank
  monotone (clocks only advance) and wall-clock-free, so traces are
  deterministic,
- ``seq`` — the event's index in its rank's own stream (the deterministic
  tie-breaker for equal virtual timestamps),
- ``attrs`` — kind-specific payload (see the table in
  ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.machine.costs import Counts

__all__ = [
    "TraceEvent",
    "EV_SEND",
    "EV_RECV",
    "EV_COLLECTIVE",
    "EV_PHASE_BEGIN",
    "EV_PHASE_END",
    "EV_MEM_PEAK",
    "EV_FAULT",
    "EV_REPLACEMENT",
    "EV_ABORT",
]

EV_SEND = "send"
EV_RECV = "recv"
EV_COLLECTIVE = "collective"
EV_PHASE_BEGIN = "phase_begin"
EV_PHASE_END = "phase_end"
EV_MEM_PEAK = "mem_peak"
EV_FAULT = "fault"
EV_REPLACEMENT = "replacement"
EV_ABORT = "abort"


@dataclass(frozen=True)
class TraceEvent:
    """One structured machine event in virtual time."""

    kind: str
    rank: int
    seq: int
    phase: str
    vt: float
    clock: Counts
    incarnation: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready flat representation (deterministic key set)."""
        out: dict[str, Any] = {
            "kind": self.kind,
            "rank": self.rank,
            "seq": self.seq,
            "phase": self.phase,
            "vt": self.vt,
            "f": self.clock.f,
            "bw": self.clock.bw,
            "l": self.clock.l,
            "incarnation": self.incarnation,
        }
        for key in sorted(self.attrs):
            out[key] = self.attrs[key]
        return out

    def sort_key(self) -> tuple:
        """Deterministic global ordering: virtual time, then rank, then
        the rank's own stream order."""
        return (self.vt, self.rank, self.seq)
