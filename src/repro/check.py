"""``python -m repro check`` — the one-stop static-analysis gate.

Runs all four analyzers in their CI configuration, in dependency-light
order, with a per-analyzer wall-time summary at the end:

1. **lint** — AST rules over the source tree (``repro.lint``);
2. **commcheck** — fault-free schedule extraction, structural checks,
   cost certification (``repro.commcheck``);
3. **racecheck** — happens-before sanitizer + guarded-by verification
   (``repro.racecheck``);
4. **faultcheck** — exhaustive fault-space certification
   (``repro.faultcheck``), optionally writing the byte-deterministic
   certificate artifact.

CI calls this entry point so the gate wiring lives in one place: adding
an analyzer here adds it to every CI pipeline and to every developer's
pre-push habit simultaneously.  Each analyzer runs even when an earlier
one fails — one red gate must not hide another's findings — and the
meta-runner's exit code is the OR of all four.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["AnalyzerRun", "CheckResult", "ANALYZERS", "run_check", "render_summary"]

#: Analyzer names in execution order.
ANALYZERS = ("lint", "commcheck", "racecheck", "faultcheck")


@dataclass
class AnalyzerRun:
    """One analyzer's outcome inside the meta-gate."""

    name: str
    exit_code: int
    seconds: float
    summary: str

    @property
    def ok(self) -> bool:
        return self.exit_code == 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "exit_code": self.exit_code,
            "seconds": round(self.seconds, 2),
            "summary": self.summary,
        }


@dataclass
class CheckResult:
    runs: list[AnalyzerRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _run_lint(jobs: int, emit: Callable[[str], None]) -> tuple[int, str]:
    from repro.lint.cli import run_lint

    # Same scope as the CI gate: the source tree (tests are covered by
    # ruff and by being executed).
    code, report = run_lint(["src"])
    if report:
        emit(report)
    return code, "clean" if code == 0 else "violations"


def _run_commcheck(jobs: int, emit: Callable[[str], None]) -> tuple[int, str]:
    from repro.commcheck import render_text, run_commcheck

    result = run_commcheck(jobs=jobs)
    emit(render_text(result))
    clean = sum(1 for r in result.reports if r.ok)
    return result.exit_code, f"{clean}/{len(result.reports)} variants clean"


def _run_racecheck(jobs: int, emit: Callable[[str], None]) -> tuple[int, str]:
    from repro.racecheck.runner import render_text, run_racecheck

    result = run_racecheck()
    emit(render_text(result))
    return result.exit_code, "clean" if result.exit_code == 0 else "races"


def _make_faultcheck(
    cert_path: str | None,
) -> Callable[[int, Callable[[str], None]], tuple[int, str]]:
    def _run_faultcheck(
        jobs: int, emit: Callable[[str], None]
    ) -> tuple[int, str]:
        from repro.faultcheck import certificate_json, render_text, run_faultcheck

        result = run_faultcheck(jobs=jobs)
        emit(render_text(result))
        if cert_path:
            with open(cert_path, "w") as fh:
                fh.write(certificate_json(result))
            emit(f"faultcheck certificate written to {cert_path}")
        certified = sum(1 for c in result.certificates if c.ok)
        points = sum(
            c.space.total_points
            for c in result.certificates
            if c.space is not None
        )
        return (
            result.exit_code,
            f"{certified}/{len(result.certificates)} variants, "
            f"{points} fault points",
        )

    return _run_faultcheck


def run_check(
    jobs: int = 1,
    only: list[str] | None = None,
    faultcheck_cert: str | None = None,
    emit: Callable[[str], None] = print,
) -> CheckResult:
    """Run the requested analyzers (default: all four) and time each.

    ``jobs`` fans the machine-replay-heavy analyzers (commcheck,
    faultcheck) across worker processes.  ``emit`` receives each
    analyzer's full report as it completes, so progress is visible on
    long runs.
    """
    runners: dict[str, Callable[[int, Callable[[str], None]], tuple[int, str]]] = {
        "lint": _run_lint,
        "commcheck": _run_commcheck,
        "racecheck": _run_racecheck,
        "faultcheck": _make_faultcheck(faultcheck_cert),
    }
    names = [n for n in ANALYZERS if only is None or n in only]
    if only is not None:
        unknown = set(only) - set(ANALYZERS)
        if unknown:
            raise SystemExit(
                f"unknown analyzer(s): {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(ANALYZERS)})"
            )
    result = CheckResult()
    for name in names:
        emit(f"=== {name} ===")
        start = time.monotonic()
        code, summary = runners[name](jobs, emit)
        elapsed = time.monotonic() - start
        result.runs.append(
            AnalyzerRun(
                name=name, exit_code=code, seconds=elapsed, summary=summary
            )
        )
    return result


def render_summary(result: CheckResult) -> str:
    """The per-analyzer timing table and the overall verdict."""
    lines = ["", "analyzer    status  seconds  summary"]
    for run in result.runs:
        status = "PASS" if run.ok else "FAIL"
        lines.append(
            f"{run.name:<11} {status:<7} {run.seconds:>6.1f}  {run.summary}"
        )
    verdict = "PASS" if result.ok else "FAIL"
    lines.append(
        f"check {verdict}: {sum(1 for r in result.runs if r.ok)}"
        f"/{len(result.runs)} analyzers clean"
    )
    return "\n".join(lines)
